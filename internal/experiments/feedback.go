package experiments

import (
	"fmt"

	"dimmwitted/internal/core"
	"dimmwitted/internal/data"
	"dimmwitted/internal/factor"
	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
	"dimmwitted/internal/tune"
)

// FeedbackDecision is one row of a self-tuning plan decision: a
// candidate, its measured cost after the probe pass, and whether the
// corrected optimizer chose it.
type FeedbackDecision struct {
	Plan                    string  `json:"plan"`
	StaticRank              int     `json:"static_rank"`
	MeasuredSecondsPerEpoch float64 `json:"measured_seconds_per_epoch"`
	Measured                bool    `json:"measured"`
	Winner                  bool    `json:"winner"`
}

// FeedbackEntry is one workload's static-vs-feedback planning
// comparison, JSON-shaped for BENCH_optimizer.json (written by the
// bench-smoke step in CI). The protocol mirrors the serving loop: a
// first pass runs the static optimizer's choice and records its wall
// clock into the feedback store, a probe pass visits every other
// candidate (the work epsilon-exploration spreads over time), and the
// corrected decision re-plans with measured costs in charge. The
// second run executes the corrected plan fresh.
type FeedbackEntry struct {
	Workload string `json:"workload"`
	Task     string `json:"task"`
	Dataset  string `json:"dataset"`
	Executor string `json:"executor"`
	Epochs   int    `json:"epochs"`
	// StaticPlan is the word-cost prior's choice (the first run);
	// TunedPlan the feedback-corrected winner (the second run).
	StaticPlan string `json:"static_plan"`
	TunedPlan  string `json:"tuned_plan"`
	// PlanSource is the corrected decision's source: "measured" proves
	// the feedback store, not the prior, decided.
	PlanSource string `json:"plan_source"`
	// StaticSecondsPerEpoch and TunedSecondsPerEpoch are the feedback
	// store's measured costs (EWMA over the recorded epochs) for the two
	// plans — the numbers the corrected decision compared, so
	// TunedSecondsPerEpoch <= StaticSecondsPerEpoch by construction.
	StaticSecondsPerEpoch float64 `json:"static_seconds_per_epoch"`
	TunedSecondsPerEpoch  float64 `json:"tuned_seconds_per_epoch"`
	// PredictedSecondsPerEpoch is the decision's forecast for the tuned
	// plan; RerunSecondsPerEpoch is the fresh second run's observed wall
	// clock on it (predicted-vs-observed).
	PredictedSecondsPerEpoch float64 `json:"predicted_seconds_per_epoch"`
	RerunSecondsPerEpoch     float64 `json:"rerun_seconds_per_epoch"`
	// Speedup is StaticSecondsPerEpoch over TunedSecondsPerEpoch (>= 1);
	// Corrected reports that feedback picked a different plan than the
	// static prior — the cases where the loop actually paid.
	Speedup   float64            `json:"speedup"`
	Corrected bool               `json:"corrected"`
	Decisions []FeedbackDecision `json:"decisions"`
	Error     string             `json:"error,omitempty"`
}

// feedbackKey maps a candidate plan to its observation key, the same
// identity scheme the serving scheduler uses.
func feedbackKey(workload string, wl core.Workload, p core.Plan) tune.Key {
	return tune.Key{
		Workload: workload, Model: wl.Name(), Dataset: wl.DatasetName(),
		Rows: wl.Units(), Cols: wl.Dim(), NNZ: wl.DataNNZ(),
		Machine:  p.Machine.Name,
		Executor: p.Executor.String(), ModelRep: p.ModelRep.String(),
		DataRep: p.DataRep.String(), Access: p.Access.String(),
		Workers: p.Workers, StealChunk: p.StealChunk,
	}
}

// feedbackCost adapts a tune.Store to the optimizer's CostModel seam.
type feedbackCost struct {
	st  *tune.Store
	key func(core.Plan) tune.Key
}

func (c feedbackCost) MeasuredSeconds(p core.Plan) (float64, bool) {
	return c.st.Measured(c.key(p))
}

// runFeedbackPlan executes epochs of the plan on a fresh engine,
// records each epoch's wall clock into the store (when given one), and
// returns the mean seconds per epoch.
func runFeedbackPlan(mk func() core.Workload, plan core.Plan, epochs int,
	st *tune.Store, key func(core.Plan) tune.Key) (float64, error) {
	eng, err := core.NewWorkload(mk(), plan)
	if err != nil {
		return 0, err
	}
	defer eng.Close()
	total := 0.0
	for _, er := range eng.RunEpochs(epochs) {
		sec := er.WallTime.Seconds()
		total += sec
		if st != nil {
			st.Record(key(eng.Plan()), tune.Sample{SecondsPerEpoch: sec})
		}
	}
	return total / float64(epochs), nil
}

// FeedbackEntries runs the self-tuning optimizer benchmark: for each
// committed workload, a static first run, a probe of the candidate
// space, a feedback-corrected re-plan, and a fresh second run on the
// corrected plan. The corrected plan's measured cost can never exceed
// the static plan's (argmin over a set containing it), so the
// comparison proves the feedback loop at worst matches and — wherever
// the word-cost prior mispriced host overheads (per-node replica
// averaging on the simulator, chain pooling in Gibbs) — beats the
// static pick outright.
func FeedbackEntries(quick bool) []FeedbackEntry {
	epochs := 6
	if quick {
		epochs = 2
	}
	tasks := []struct {
		workload string
		mk       func() core.Workload
		exec     core.ExecutorKind
	}{
		{"glm", func() core.Workload { return core.NewGLM(model.NewSVM(), data.Reuters()) }, core.ExecSimulated},
		{"glm", func() core.Workload { return core.NewGLM(model.NewLR(), data.Reuters()) }, core.ExecSimulated},
		{"glm", func() core.Workload { return core.NewGLM(model.NewSVM(), data.ReutersReplicated()) }, core.ExecParallel},
		{"gibbs", func() core.Workload {
			g, _ := factor.GraphByName("cycle5")
			return factor.NewWorkload(g)
		}, core.ExecSimulated},
	}
	var out []FeedbackEntry
	for _, task := range tasks {
		wl := task.mk()
		entry := FeedbackEntry{
			Workload: task.workload,
			Task:     wl.Name(),
			Dataset:  wl.DatasetName(),
			Executor: task.exec.String(),
			Epochs:   epochs,
		}
		key := func(p core.Plan) tune.Key { return feedbackKey(task.workload, wl, p) }
		cands, err := core.CandidatePlans(wl, numa.Local2, task.exec)
		if err != nil {
			entry.Error = err.Error()
			out = append(out, entry)
			continue
		}

		// Pass 1: the static optimizer's first run seeds the store.
		// Pass 2: probe the rest of the candidate space, as the serving
		// loop's epsilon-exploration would over many jobs.
		st := tune.NewStore(tune.Options{MinObservations: 1, Epsilon: -1})
		static := cands[0]
		entry.StaticPlan = static.String()
		if _, err := runFeedbackPlan(task.mk, static, epochs, st, key); err != nil {
			entry.Error = err.Error()
			out = append(out, entry)
			continue
		}
		for _, p := range cands[1:] {
			if _, err := runFeedbackPlan(task.mk, p, epochs, st, key); err != nil {
				entry.Error = err.Error()
				break
			}
		}
		if entry.Error != "" {
			out = append(out, entry)
			continue
		}

		// The corrected decision: measured costs are in charge now.
		dec, err := core.ChoosePlanModel(task.mk(), numa.Local2, task.exec, feedbackCost{st, key})
		if err != nil {
			entry.Error = err.Error()
			out = append(out, entry)
			continue
		}
		entry.TunedPlan = dec.Plan.String()
		entry.PlanSource = dec.Source
		entry.PredictedSecondsPerEpoch = dec.PredictedSeconds
		entry.StaticSecondsPerEpoch, _ = st.Measured(key(static))
		entry.TunedSecondsPerEpoch, _ = st.Measured(key(dec.Plan))
		if entry.TunedSecondsPerEpoch > 0 {
			entry.Speedup = entry.StaticSecondsPerEpoch / entry.TunedSecondsPerEpoch
		}
		entry.Corrected = dec.Plan.String() != static.String()
		for i, c := range dec.Candidates {
			entry.Decisions = append(entry.Decisions, FeedbackDecision{
				Plan:                    c.Plan.String(),
				StaticRank:              c.StaticRank,
				MeasuredSecondsPerEpoch: c.MeasuredSeconds,
				Measured:                c.Measured,
				Winner:                  dec.Candidates[i].Plan.String() == dec.Plan.String(),
			})
		}

		// The second run: predicted vs observed on a fresh engine.
		rerun, err := runFeedbackPlan(task.mk, dec.Plan, epochs, nil, nil)
		if err != nil {
			entry.Error = err.Error()
			out = append(out, entry)
			continue
		}
		entry.RerunSecondsPerEpoch = rerun
		out = append(out, entry)
	}
	return out
}

// FeedbackResult builds the table view of measurements taken by
// FeedbackEntries, mirroring ExecWallResult.
func FeedbackResult(entries []FeedbackEntry) *Result {
	t := &Table{
		Name:   "feedback",
		Title:  "self-tuning optimizer: static first run vs feedback-corrected second run",
		Header: []string{"workload", "task", "executor", "static plan", "tuned plan", "static s/ep", "tuned s/ep", "rerun s/ep", "speedup", "corrected"},
		Notes:  "tuned <= static by construction (argmin over measured candidates); corrected rows are where the word-cost prior mispriced the host",
	}
	metrics := map[string]float64{}
	for _, e := range entries {
		if e.Error != "" {
			t.Rows = append(t.Rows, []string{e.Workload, e.Task, e.Executor, "ERROR: " + e.Error, "-", "-", "-", "-", "-", "-"})
			continue
		}
		t.Rows = append(t.Rows, []string{
			e.Workload, e.Task, e.Executor, e.StaticPlan, e.TunedPlan,
			fmt.Sprintf("%.4f", e.StaticSecondsPerEpoch),
			fmt.Sprintf("%.4f", e.TunedSecondsPerEpoch),
			fmt.Sprintf("%.4f", e.RerunSecondsPerEpoch),
			fmt.Sprintf("%.2fx", e.Speedup),
			fmt.Sprintf("%v", e.Corrected),
		})
		metrics[fmt.Sprintf("%s_%s_speedup", e.Workload, e.Task)] = e.Speedup
	}
	return &Result{Table: t, Metrics: metrics}
}

// FeedbackSpeedups reports each workload's feedback-over-static
// speedup in the shared gate row shape, so dwbench -feedback can
// enforce "the corrected plan never loses" the same way the executor
// benches enforce their thresholds.
func FeedbackSpeedups(entries []FeedbackEntry) []SpeedupRow {
	var out []SpeedupRow
	for _, e := range entries {
		if e.Error != "" || e.Speedup <= 0 {
			continue
		}
		out = append(out, SpeedupRow{
			Task:      e.Workload + "/" + e.Task,
			Metric:    "static_over_tuned_s_per_epoch",
			Simulated: e.StaticSecondsPerEpoch,
			Parallel:  e.TunedSecondsPerEpoch,
			Speedup:   e.Speedup,
		})
	}
	return out
}
