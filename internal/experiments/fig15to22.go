package experiments

import (
	"fmt"

	"dimmwitted/internal/core"
	"dimmwitted/internal/data"
	"dimmwitted/internal/factor"
	"dimmwitted/internal/model"
	"dimmwitted/internal/nn"
	"dimmwitted/internal/numa"
)

// Fig15 reproduces Figure 15: the ratio of row-wise to column-wise
// time per epoch grows with the socket count (the write-contention
// factor α grows), shown for SVM (RCV1) and LP (Amazon) with
// PerMachine replication on all five machines.
func Fig15(quick bool) *Result {
	t := &Table{
		Name:   "fig15",
		Title:  "Row/column time-per-epoch ratio across architectures (PerMachine)",
		Header: []string{"machine", "sockets", "SVM (RCV1)", "LP (Amazon)"},
	}
	metrics := map[string]float64{}
	machines := numa.Machines()
	if quick {
		machines = []numa.Topology{numa.Local2, numa.Local8}
	}
	svm, lp := model.NewSVM(), model.NewLP()
	svmDS, lpDS := data.RCV1(), data.AmazonLP()
	for _, top := range machines {
		svmRatio := accessRatio(svm, svmDS, top)
		lpRatio := accessRatio(lp, lpDS, top)
		t.Rows = append(t.Rows, []string{
			top.Name, fmt.Sprintf("%d", top.Nodes),
			fmt.Sprintf("%.2f", svmRatio), fmt.Sprintf("%.2f", lpRatio),
		})
		metrics["svm/"+top.Name] = svmRatio
		metrics["lp/"+top.Name] = lpRatio
	}
	t.Notes = "paper: the ratio increases with the socket count on both workloads"
	return &Result{Table: t, Metrics: metrics}
}

// accessRatio returns row-epoch-time / column-epoch-time under
// PerMachine replication on the given machine.
func accessRatio(spec model.Spec, ds *data.Dataset, top numa.Topology) float64 {
	colAccess := spec.Supports()[0]
	if colAccess == model.RowWise {
		colAccess = spec.Supports()[1]
	}
	rowT := runEngine(spec, ds, core.Plan{
		Access: model.RowWise, ModelRep: core.PerMachine, DataRep: core.Sharding, Machine: top,
	}).RunEpoch().SimTime.Seconds()
	colT := runEngine(spec, ds, core.Plan{
		Access: colAccess, ModelRep: core.PerMachine, DataRep: core.Sharding, Machine: top,
	}).RunEpoch().SimTime.Seconds()
	return rowT / colT
}

// Fig16a reproduces Figure 16(a): the PerMachine/PerNode ratio of time
// to 50% loss grows with the socket count (SVM, RCV1).
func Fig16a(quick bool) *Result {
	t := &Table{
		Name:   "fig16a",
		Title:  "PerMachine/PerNode time to 50% loss across architectures, SVM (RCV1)",
		Header: []string{"machine", "sockets", "ratio"},
	}
	metrics := map[string]float64{}
	spec := model.NewSVM()
	ds := data.RCV1()
	opt := OptimalLoss(spec, ds)
	target := targetFor(opt, 50)
	max := epochsArg(quick, 120)
	machines := numa.Machines()
	if quick {
		machines = []numa.Topology{numa.Local2, numa.Local8}
	}
	for _, top := range machines {
		// Sharding for both keeps the per-epoch work identical across
		// machines, isolating the model-replication effect (pairing
		// PerMachine with FullReplication would feed the single
		// replica the dataset once per node, masking the α growth).
		pm := runEngine(spec, ds, core.Plan{ModelRep: core.PerMachine, DataRep: core.Sharding, Machine: top, Seed: 2}).RunToLoss(target, max)
		pn := runEngine(spec, ds, core.Plan{ModelRep: core.PerNode, DataRep: core.Sharding, Machine: top, Seed: 2}).RunToLoss(target, max)
		ratio := pm.Time.Seconds() / pn.Time.Seconds()
		t.Rows = append(t.Rows, []string{top.Name, fmt.Sprintf("%d", top.Nodes), fmt.Sprintf("%.1f", ratio)})
		metrics["ratio/"+top.Name] = ratio
	}
	t.Notes = "paper: PerNode's advantage grows with sockets (ratio > 1 everywhere, rising)"
	return &Result{Table: t, Metrics: metrics}
}

// Fig16b reproduces Figure 16(b): the PerMachine/PerNode ratio of time
// to 50% loss as the update density (sparsity of subsampled Music)
// grows: PerMachine wins when updates touch ~one element, PerNode wins
// when they are dense.
func Fig16b(quick bool) *Result {
	t := &Table{
		Name:   "fig16b",
		Title:  "PerMachine/PerNode time to 50% loss vs update sparsity (Music subsampled)",
		Header: []string{"keep", "ratio (PerMachine/PerNode)"},
	}
	metrics := map[string]float64{}
	base := data.Music()
	spec := model.NewSVM()
	keeps := []float64{0.01, 0.1, 0.5, 1.0}
	if quick {
		keeps = []float64{0.01, 1.0}
	}
	max := epochsArg(quick, 150)
	for _, keep := range keeps {
		ds := base
		if keep < 1 {
			ds = data.SubsampleSparsity(base, keep, 9)
		}
		opt := OptimalLoss(spec, ds)
		target := targetFor(opt, 50)
		pm := runEngine(spec, ds, core.Plan{ModelRep: core.PerMachine, DataRep: core.FullReplication, Seed: 2}).RunToLoss(target, max)
		pn := runEngine(spec, ds, core.Plan{ModelRep: core.PerNode, DataRep: core.FullReplication, Seed: 2}).RunToLoss(target, max)
		ratio := pm.Time.Seconds() / pn.Time.Seconds()
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%.2f", keep), fmt.Sprintf("%.2f", ratio)})
		metrics[fmt.Sprintf("ratio/%.2f", keep)] = ratio
	}
	t.Notes = "paper: ratio < 1 (PerMachine better) at 1% density, >> 1 when dense"
	return &Result{Table: t, Metrics: metrics}
}

// Fig17a reproduces Figure 17(a): the FullReplication/Sharding ratio
// of time to a loss target, by error level (SVM RCV1): FullReplication
// wins at low error, Sharding at high error.
func Fig17a(quick bool) *Result {
	t := &Table{
		Name:   "fig17a",
		Title:  "FullReplication vs Sharding by error level, SVM (RCV1, PerNode)",
		Header: []string{"error", "FullRepl s", "Sharding s", "ratio (FullRepl/Sharding)"},
	}
	metrics := map[string]float64{}
	spec := model.NewSVM()
	ds := data.RCV1()
	opt := OptimalLoss(spec, ds)
	max := epochsArg(quick, 200)
	full := runEngine(spec, ds, core.Plan{ModelRep: core.PerNode, DataRep: core.FullReplication, Seed: 4}).RunEpochs(max)
	shard := runEngine(spec, ds, core.Plan{ModelRep: core.PerNode, DataRep: core.Sharding, Seed: 4}).RunEpochs(max)
	// Error levels are looser than the paper's because the sharded
	// PerNode estimate plateaus earlier on the scaled dataset; the
	// claim under test is the trend of the ratio with the error level.
	for _, pct := range []float64{400, 200, 100, 50, 10} {
		target := targetFor(opt, pct)
		ft, _, fok := timeToTarget(full, target)
		st, _, sok := timeToTarget(shard, target)
		if !fok {
			ft = full[len(full)-1].CumTime
		}
		if !sok {
			st = shard[len(shard)-1].CumTime
		}
		row := []string{fmt.Sprintf("%.0f%%", pct), fmtSecs(ft, fok), fmtSecs(st, sok)}
		switch {
		case fok && sok:
			ratio := ft.Seconds() / st.Seconds()
			row = append(row, fmt.Sprintf("%.2f", ratio))
			metrics[fmt.Sprintf("ratio/%.0f", pct)] = ratio
		case fok && !sok:
			// The low-error regime of the paper's plot: only the
			// fully replicated run ever reaches the target.
			row = append(row, "FullRepl only")
			metrics[fmt.Sprintf("fullOnly/%.0f", pct)] = 1
		default:
			row = append(row, "timeout")
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = "paper: FullRepl 1.8-2.5x faster at low error (here: it alone reaches the low-error targets); comparable or slower at high error"
	return &Result{Table: t, Metrics: metrics}
}

// Fig17b reproduces Figure 17(b): throughput of Gibbs sampling and
// neural-network training under the classic choice vs DimmWitted's.
func Fig17b(quick bool) *Result {
	t := &Table{
		Name:   "fig17b",
		Title:  "Extensions: variables/second (millions), classic choice vs DimmWitted",
		Header: []string{"workload", "classic", "DimmWitted", "speedup"},
	}
	metrics := map[string]float64{}

	// Gibbs: single PerMachine chain vs chain-per-node, both run
	// through the workload engine (the classic choice is PerMachine +
	// Sharding, DimmWitted's is PerNode + FullReplication).
	g := factor.Paleo()
	sweeps := 3
	if quick {
		sweeps = 1
	}
	gibbsThroughput := func(plan core.Plan) float64 {
		eng, err := core.NewWorkload(factor.NewWorkload(g), plan)
		if err != nil {
			panic(err)
		}
		steps := 0
		var cum float64
		for _, er := range eng.RunEpochs(sweeps) {
			steps += er.Steps
			cum = er.CumTime.Seconds()
		}
		return float64(steps) / cum
	}
	// The classic Hogwild!-Gibbs baseline is NUMA-oblivious: one
	// machine-shared chain over OS-interleaved factor storage.
	single := gibbsThroughput(core.Plan{ModelRep: core.PerMachine, DataRep: core.Sharding, Placement: core.PlacementOS, Seed: 1})
	perNode := gibbsThroughput(core.Plan{ModelRep: core.PerNode, DataRep: core.FullReplication, Seed: 1})
	gibbsSpeedup := perNode / single
	t.Rows = append(t.Rows, []string{
		"Gibbs (paleo)",
		fmt.Sprintf("%.3g", single/1e6),
		fmt.Sprintf("%.3g", perNode/1e6),
		fmt.Sprintf("%.1fx", gibbsSpeedup),
	})
	metrics["gibbsSpeedup"] = gibbsSpeedup

	// Neural network: PerMachine+Sharding (LeCun) vs PerNode+FullRepl,
	// also through the workload engine.
	examples := 400
	if quick {
		examples = 150
	}
	ds := nn.SyntheticMNIST(examples, 256, 10, 0.08, 3)
	nnThroughput := func(plan core.Plan) float64 {
		wl, err := nn.NewWorkload(ds, nn.WorkloadConfig{Seed: 3})
		if err != nil {
			panic(err)
		}
		eng, err := core.NewWorkload(wl, plan)
		if err != nil {
			panic(err)
		}
		er := eng.RunEpoch()
		return float64(er.Steps*wl.NumNeurons()) / er.SimTime.Seconds()
	}
	c := nnThroughput(core.Plan{ModelRep: core.PerMachine, DataRep: core.Sharding, Seed: 3})
	d := nnThroughput(core.Plan{ModelRep: core.PerNode, DataRep: core.FullReplication, Seed: 3})
	nnSpeedup := d / c
	t.Rows = append(t.Rows, []string{
		"NN (mnist)",
		fmt.Sprintf("%.3g", c/1e6),
		fmt.Sprintf("%.3g", d/1e6),
		fmt.Sprintf("%.1fx", nnSpeedup),
	})
	metrics["nnSpeedup"] = nnSpeedup
	t.Notes = "paper: Gibbs ~4x, NN >10x over the classic choices"
	return &Result{Table: t, Metrics: metrics}
}

// Fig20 reproduces Appendix Figure 20: speedup vs thread count for the
// three model-replication strategies and a Delite-like baseline
// (PerMachine with OS placement, which stops scaling beyond one
// socket), LR on Music, local2.
func Fig20(quick bool) *Result {
	t := &Table{
		Name:   "fig20",
		Title:  "Speedup vs threads, LR (Music), local2",
		Header: []string{"threads", "PerCore", "PerNode", "PerMachine", "Delite-like"},
	}
	metrics := map[string]float64{}
	spec := model.NewLR()
	ds := data.Music()
	threads := []int{1, 2, 4, 6, 8, 12}
	if quick {
		threads = []int{1, 4, 12}
	}
	epochTime := func(rep core.ModelReplication, placement core.Placement, workers int) float64 {
		return runEngine(spec, ds, core.Plan{
			ModelRep: rep, DataRep: core.Sharding, Workers: workers, Placement: placement,
		}).RunEpoch().SimTime.Seconds()
	}
	base := map[string]float64{
		"PerCore":    epochTime(core.PerCore, core.PlacementNUMA, 1),
		"PerNode":    epochTime(core.PerNode, core.PlacementNUMA, 1),
		"PerMachine": epochTime(core.PerMachine, core.PlacementNUMA, 1),
		"Delite":     epochTime(core.PerMachine, core.PlacementOS, 1),
	}
	for _, w := range threads {
		pc := base["PerCore"] / epochTime(core.PerCore, core.PlacementNUMA, w)
		pn := base["PerNode"] / epochTime(core.PerNode, core.PlacementNUMA, w)
		pm := base["PerMachine"] / epochTime(core.PerMachine, core.PlacementNUMA, w)
		dl := base["Delite"] / epochTime(core.PerMachine, core.PlacementOS, w)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", w),
			fmt.Sprintf("%.1f", pc), fmt.Sprintf("%.1f", pn),
			fmt.Sprintf("%.1f", pm), fmt.Sprintf("%.1f", dl),
		})
		metrics[fmt.Sprintf("percore/%d", w)] = pc
		metrics[fmt.Sprintf("pernode/%d", w)] = pn
		metrics[fmt.Sprintf("permachine/%d", w)] = pm
		metrics[fmt.Sprintf("delite/%d", w)] = dl
	}
	t.Notes = "paper: PerCore scales most linearly; PerMachine (and Delite) plateau"
	return &Result{Table: t, Metrics: metrics}
}

// Fig21 reproduces Appendix Figure 21: time per epoch grows linearly
// with the example count on the ClueWeb-like least-squares workload.
func Fig21(quick bool) *Result {
	t := &Table{
		Name:   "fig21",
		Title:  "Scalability: time per epoch vs scale, ClueWeb-like LS",
		Header: []string{"scale", "rows", "s/epoch"},
	}
	metrics := map[string]float64{}
	spec := model.NewLS()
	scales := []float64{0.01, 0.1, 0.5, 1.0}
	if quick {
		scales = []float64{0.01, 0.1, 1.0}
	}
	for _, s := range scales {
		ds := data.ClueWeb(s)
		sec := runEngine(spec, ds, core.Plan{ModelRep: core.PerNode, DataRep: core.Sharding}).RunEpoch().SimTime.Seconds()
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%.2f", s), fmt.Sprintf("%d", ds.Rows()), fmt.Sprintf("%.4g", sec)})
		metrics[fmt.Sprintf("epochTime/%.2f", s)] = sec
	}
	t.Notes = "paper: near-linear growth; the 100K-weight model stays LLC-resident"
	return &Result{Table: t, Metrics: metrics}
}

// Fig22 reproduces Appendix Figure 22: importance (leverage-score)
// sampling vs Sharding vs FullReplication on Music least squares:
// sampling 10% of tuples reaches mid-range losses faster, while the
// low-tolerance variant processes as much as FullReplication and wins
// nothing.
func Fig22(quick bool) *Result {
	t := &Table{
		Name:   "fig22",
		Title:  "Importance sampling: simulated seconds to error targets, LS (Music, PerNode)",
		Header: []string{"error", "Sharding", "FullRepl", "Importance(10%)", "Importance(100%)"},
	}
	metrics := map[string]float64{}
	spec := model.NewLS()
	ds := data.MusicRegression()
	opt := OptimalLoss(spec, ds)
	max := epochsArg(quick, 120)
	strategies := []struct {
		name string
		plan core.Plan
	}{
		{"Sharding", core.Plan{ModelRep: core.PerNode, DataRep: core.Sharding, Seed: 6}},
		{"FullRepl", core.Plan{ModelRep: core.PerNode, DataRep: core.FullReplication, Seed: 6}},
		{"Imp10", core.Plan{ModelRep: core.PerNode, DataRep: core.Importance, ImportanceFraction: 0.1, Seed: 6}},
		{"Imp100", core.Plan{ModelRep: core.PerNode, DataRep: core.Importance, ImportanceFraction: 1.0, Seed: 6}},
	}
	hists := map[string][]core.EpochResult{}
	for _, s := range strategies {
		hists[s.name] = runEngine(spec, ds, s.plan).RunEpochs(max)
	}
	for _, pct := range []float64{100, 50, 10} {
		target := targetFor(opt, pct)
		row := []string{fmt.Sprintf("%.0f%%", pct)}
		for _, s := range strategies {
			tt, _, ok := timeToTarget(hists[s.name], target)
			if !ok {
				tt = hists[s.name][len(hists[s.name])-1].CumTime
			}
			row = append(row, fmtSecs(tt, ok))
			metrics[fmt.Sprintf("%s/%.0f", s.name, pct)] = tt.Seconds()
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = "paper: Importance(ε=0.1) ~3x faster than FullRepl at 10% loss; ε=0.01 processes as much as FullRepl"
	return &Result{Table: t, Metrics: metrics}
}

// AppA reproduces the Appendix A micro-studies: worker/data
// collocation (NUMA vs OS), dense vs sparse storage, and the row- vs
// column-major mismatch penalty.
func AppA(quick bool) *Result {
	t := &Table{
		Name:   "appA",
		Title:  "Appendix A: placement and storage micro-studies, SVM",
		Header: []string{"study", "baseline s/epoch", "optimised s/epoch", "speedup"},
	}
	metrics := map[string]float64{}
	spec := model.NewSVM()

	// (1) Data/worker collocation: OS vs NUMA placement on RCV1.
	rcv1 := data.RCV1()
	osT := runEngine(spec, rcv1, core.Plan{ModelRep: core.PerNode, Placement: core.PlacementOS}).RunEpoch().SimTime.Seconds()
	numaT := runEngine(spec, rcv1, core.Plan{ModelRep: core.PerNode, Placement: core.PlacementNUMA}).RunEpoch().SimTime.Seconds()
	t.Rows = append(t.Rows, []string{"collocation (OS -> NUMA)", fmt.Sprintf("%.4g", osT), fmt.Sprintf("%.4g", numaT), fmt.Sprintf("%.2fx", osT/numaT)})
	metrics["collocation"] = osT / numaT

	// (2) Storage format on dense data: sparse CSR vs dense rows.
	music := data.Music()
	sparseT := runEngine(spec, music, core.Plan{ModelRep: core.PerNode}).RunEpoch().SimTime.Seconds()
	denseT := runEngine(spec, music, core.Plan{ModelRep: core.PerNode, DenseStorage: true}).RunEpoch().SimTime.Seconds()
	t.Rows = append(t.Rows, []string{"storage on dense data (sparse -> dense)", fmt.Sprintf("%.4g", sparseT), fmt.Sprintf("%.4g", denseT), fmt.Sprintf("%.2fx", sparseT/denseT)})
	metrics["denseOnDense"] = sparseT / denseT

	// (3) Storage format on sparse data: dense rows vs sparse CSR.
	sub := data.SubsampleSparsity(music, 0.05, 2)
	denseSub := runEngine(spec, sub, core.Plan{ModelRep: core.PerNode, DenseStorage: true}).RunEpoch().SimTime.Seconds()
	sparseSub := runEngine(spec, sub, core.Plan{ModelRep: core.PerNode}).RunEpoch().SimTime.Seconds()
	t.Rows = append(t.Rows, []string{"storage on 5% data (dense -> sparse)", fmt.Sprintf("%.4g", denseSub), fmt.Sprintf("%.4g", sparseSub), fmt.Sprintf("%.2fx", denseSub/sparseSub)})
	metrics["sparseOnSparse"] = denseSub / sparseSub

	t.Notes = "paper: NUMA collocation up to 2x; dense up to 2x on dense data; sparse up to 4x on sparse data"
	return &Result{Table: t, Metrics: metrics}
}
