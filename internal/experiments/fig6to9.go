package experiments

import (
	"fmt"

	"dimmwitted/internal/core"
	"dimmwitted/internal/data"
	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
)

// Fig6 tabulates the cost model of Figure 6: per-epoch read and write
// volumes of the row- and column-wise access methods on each dataset.
func Fig6(quick bool) *Result {
	t := &Table{
		Name:   "fig6",
		Title:  "Per-epoch execution cost of row- vs column-wise access (words)",
		Header: []string{"dataset", "Σnᵢ (row reads)", "row writes (sparse)", "Σnᵢ² (col reads)", "col writes (d)"},
	}
	metrics := map[string]float64{}
	for _, ds := range []*data.Dataset{data.RCV1(), data.Reuters(), data.Music(), data.AmazonLP()} {
		var sumN, sumN2 float64
		for i := 0; i < ds.Rows(); i++ {
			n := float64(ds.A.RowNNZ(i))
			sumN += n
			sumN2 += n * n
		}
		t.Rows = append(t.Rows, []string{
			ds.Name,
			fmt.Sprintf("%.3g", sumN),
			fmt.Sprintf("%.3g", sumN),
			fmt.Sprintf("%.3g", sumN2),
			fmt.Sprintf("%d", ds.Cols()),
		})
		metrics["sumN/"+ds.Name] = sumN
		metrics["sumN2/"+ds.Name] = sumN2
	}
	return &Result{Table: t, Metrics: metrics}
}

// Fig7a reproduces Figure 7(a): the number of epochs each access
// method needs to reach 10% of the optimal loss is similar (within a
// small factor) across methods — statistical efficiency is comparable;
// the wall-clock difference comes from hardware efficiency.
func Fig7a(quick bool) *Result {
	t := &Table{
		Name:   "fig7a",
		Title:  "Epochs to 10% error: access methods have comparable statistical efficiency",
		Header: []string{"task", "row-wise epochs", "column epochs"},
	}
	metrics := map[string]float64{}
	cases := []struct {
		label string
		spec  model.Spec
		ds    *data.Dataset
		pct   float64
	}{
		{"SVM1 (rcv1)", model.NewSVM(), data.RCV1(), 10},
		{"SVM2 (reuters)", model.NewSVM(), data.Reuters(), 10},
		{"LP1 (amazon)", model.NewLP(), data.AmazonLP(), 10},
		{"LP2 (google)", model.NewLP(), data.GoogleLP(), 10},
	}
	max := epochsArg(quick, 120)
	for _, c := range cases {
		opt := OptimalLoss(c.spec, c.ds)
		target := targetFor(opt, c.pct)
		colAccess := c.spec.Supports()[0]
		if colAccess == model.RowWise {
			colAccess = c.spec.Supports()[1]
		}
		// Row-wise: single-worker sequential run isolates statistical
		// efficiency from replication effects; same for column.
		rowRes := runEngine(c.spec, c.ds, core.Plan{
			Access: model.RowWise, ModelRep: core.PerMachine, Workers: 1,
		}).RunToLoss(target, max)
		colRes := runEngine(c.spec, c.ds, core.Plan{
			Access: colAccess, ModelRep: core.PerMachine, Workers: 1,
		}).RunToLoss(target, max)
		rowE, colE := float64(rowRes.Epochs), float64(colRes.Epochs)
		t.Rows = append(t.Rows, []string{
			c.label,
			fmt.Sprintf("%d (conv=%v)", rowRes.Epochs, rowRes.Converged),
			fmt.Sprintf("%d (conv=%v)", colRes.Epochs, colRes.Converged),
		})
		metrics["rowEpochs/"+c.label] = rowE
		metrics["colEpochs/"+c.label] = colE
	}
	t.Notes = "paper: the gap in epochs between methods is small (within ~50%)"
	return &Result{Table: t, Metrics: metrics}
}

// Fig7b reproduces Figure 7(b): time per epoch of row- vs column-wise
// access on sparsity-subsampled Music; the winner flips as the cost
// ratio (1+α)Σnᵢ/(Σnᵢ²+αd) crosses 1.
func Fig7b(quick bool) *Result {
	t := &Table{
		Name:   "fig7b",
		Title:  "Time per epoch vs cost ratio on subsampled Music (α=10)",
		Header: []string{"keep", "cost ratio", "row s/epoch", "col s/epoch", "row/col"},
	}
	metrics := map[string]float64{}
	base := data.Music()
	keeps := []float64{0.02, 0.05, 0.1, 0.3, 1.0}
	if quick {
		keeps = []float64{0.02, 0.1, 1.0}
	}
	spec := model.NewSVM()
	for _, keep := range keeps {
		ds := base
		if keep < 1 {
			ds = data.SubsampleSparsity(base, keep, 7)
		}
		ratio := core.CostRatio(ds, 10)
		rowT := runEngine(spec, ds, core.Plan{
			Access: model.RowWise, ModelRep: core.PerMachine, DataRep: core.Sharding,
		}).RunEpoch().SimTime.Seconds()
		colT := runEngine(spec, ds, core.Plan{
			Access: model.ColToRow, ModelRep: core.PerMachine, DataRep: core.Sharding,
		}).RunEpoch().SimTime.Seconds()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", keep),
			fmt.Sprintf("%.3f", ratio),
			fmt.Sprintf("%.3g", rowT),
			fmt.Sprintf("%.3g", colT),
			fmt.Sprintf("%.2f", rowT/colT),
		})
		metrics[fmt.Sprintf("rowOverCol/%.2f", keep)] = rowT / colT
		metrics[fmt.Sprintf("costRatio/%.2f", keep)] = ratio
	}
	t.Notes = "paper: row-wise wins at low cost ratio (6x), column-wise at high (3x); crossover exists. " +
		"Here the crossover falls between keep=1.0 (row wins) and keep=0.1 (column wins); at the extreme " +
		"sparse tail (keep=0.02) sub-cacheline updates de-contend row-wise writes and it wins again — see EXPERIMENTS.md."
	return &Result{Table: t, Metrics: metrics}
}

// Fig8a reproduces Figure 8(a): epochs to converge per model-
// replication strategy on SVM (RCV1); PerMachine needs the fewest
// epochs, PerCore the most.
func Fig8a(quick bool) *Result {
	t := &Table{
		Name:   "fig8a",
		Title:  "Epochs to error targets by model replication, SVM (RCV1)",
		Header: []string{"error", "PerCore", "PerNode", "PerMachine"},
	}
	metrics := map[string]float64{}
	spec := model.NewSVM()
	ds := data.RCV1()
	opt := OptimalLoss(spec, ds)
	max := epochsArg(quick, 200)
	pcts := []float64{100, 50, 10}
	results := map[core.ModelReplication][]string{}
	for _, rep := range []core.ModelReplication{core.PerCore, core.PerNode, core.PerMachine} {
		eng := runEngine(spec, ds, core.Plan{ModelRep: rep, DataRep: core.Sharding, Seed: 3})
		hist := eng.RunEpochs(max)
		for _, pct := range pcts {
			_, epochs, ok := timeToTarget(hist, targetFor(opt, pct))
			cell := fmt.Sprintf("%d", epochs)
			if !ok {
				cell = fmt.Sprintf("> %d", max)
				epochs = max + 1
			}
			results[rep] = append(results[rep], cell)
			metrics[fmt.Sprintf("epochs/%v/%.0f", rep, pct)] = float64(epochs)
		}
	}
	for i, pct := range pcts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", pct),
			results[core.PerCore][i], results[core.PerNode][i], results[core.PerMachine][i],
		})
	}
	t.Notes = "paper: PerMachine always needs the fewest epochs; PerCore the most"
	return &Result{Table: t, Metrics: metrics}
}

// Fig8b reproduces Figure 8(b): time per epoch by model replication on
// SVM (RCV1); PerNode is dramatically faster than PerMachine (paper:
// 23x) and slightly slower than PerCore.
func Fig8b(quick bool) *Result {
	t := &Table{
		Name:   "fig8b",
		Title:  "Time per epoch by model replication, SVM (RCV1)",
		Header: []string{"strategy", "s/epoch"},
	}
	metrics := map[string]float64{}
	spec := model.NewSVM()
	ds := data.RCV1()
	for _, rep := range []core.ModelReplication{core.PerMachine, core.PerCore, core.PerNode} {
		sec := runEngine(spec, ds, core.Plan{ModelRep: rep, DataRep: core.Sharding}).RunEpoch().SimTime.Seconds()
		t.Rows = append(t.Rows, []string{rep.String(), fmt.Sprintf("%.4g", sec)})
		metrics["epochTime/"+rep.String()] = sec
	}
	metrics["perMachineOverPerNode"] = metrics["epochTime/PerMachine"] / metrics["epochTime/PerNode"]
	t.Notes = fmt.Sprintf("PerMachine/PerNode = %.1fx (paper: ~23x)", metrics["perMachineOverPerNode"])
	return &Result{Table: t, Metrics: metrics}
}

// Fig9a reproduces Figure 9(a): epochs to converge for Sharding vs
// FullReplication (SVM Reuters, PerNode); FullReplication needs fewer
// epochs at low error.
func Fig9a(quick bool) *Result {
	t := &Table{
		Name:   "fig9a",
		Title:  "Epochs to error targets by data replication, SVM (Reuters, PerNode)",
		Header: []string{"error", "Sharding", "FullReplication"},
	}
	metrics := map[string]float64{}
	spec := model.NewSVM()
	ds := data.Reuters()
	opt := OptimalLoss(spec, ds)
	max := epochsArg(quick, 150)
	hists := map[core.DataReplication][]core.EpochResult{}
	for _, rep := range []core.DataReplication{core.Sharding, core.FullReplication} {
		eng := runEngine(spec, ds, core.Plan{ModelRep: core.PerNode, DataRep: rep, Seed: 5})
		hists[rep] = eng.RunEpochs(max)
	}
	for _, pct := range []float64{100, 50, 10} {
		target := targetFor(opt, pct)
		row := []string{fmt.Sprintf("%.0f%%", pct)}
		for _, rep := range []core.DataReplication{core.Sharding, core.FullReplication} {
			_, epochs, ok := timeToTarget(hists[rep], target)
			if !ok {
				row = append(row, fmt.Sprintf("> %d", max))
				epochs = max + 1
			} else {
				row = append(row, fmt.Sprintf("%d", epochs))
			}
			metrics[fmt.Sprintf("epochs/%v/%.0f", rep, pct)] = float64(epochs)
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = "paper: FullReplication uses up to 10x fewer epochs at low error"
	return &Result{Table: t, Metrics: metrics}
}

// Fig9b reproduces Figure 9(b): FullReplication's per-epoch time grows
// with the node count (each node processes the full dataset), while
// Sharding's stays flat.
func Fig9b(quick bool) *Result {
	t := &Table{
		Name:   "fig9b",
		Title:  "Time per epoch by data replication across machines, SVM (Reuters, PerNode)",
		Header: []string{"machine", "Sharding s/epoch", "FullRepl s/epoch", "ratio"},
	}
	metrics := map[string]float64{}
	spec := model.NewSVM()
	ds := data.Reuters()
	for _, top := range []numa.Topology{numa.Local2, numa.Local4, numa.Local8} {
		sh := runEngine(spec, ds, core.Plan{ModelRep: core.PerNode, DataRep: core.Sharding, Machine: top}).RunEpoch().SimTime.Seconds()
		fr := runEngine(spec, ds, core.Plan{ModelRep: core.PerNode, DataRep: core.FullReplication, Machine: top}).RunEpoch().SimTime.Seconds()
		t.Rows = append(t.Rows, []string{top.Name, fmt.Sprintf("%.4g", sh), fmt.Sprintf("%.4g", fr), fmt.Sprintf("%.1f", fr/sh)})
		metrics["ratio/"+top.Name] = fr / sh
	}
	t.Notes = "paper: the slowdown is roughly the node count"
	return &Result{Table: t, Metrics: metrics}
}
