package experiments

import (
	"fmt"

	"dimmwitted/internal/baseline"
	"dimmwitted/internal/core"
	"dimmwitted/internal/data"
	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
)

// fig11Task is one row group of the end-to-end comparison.
type fig11Task struct {
	label string
	spec  model.Spec
	ds    *data.Dataset
}

// fig11Tasks returns the paper's task grid (Figure 11): SVM/LR/LS on
// the four supervised datasets, LP/QP on the two graphs.
func fig11Tasks(quick bool) []fig11Task {
	if quick {
		return []fig11Task{
			{"SVM/Reuters", model.NewSVM(), data.Reuters()},
			{"LS/Forest", model.NewLS(), forestRegression()},
			{"LP/Amazon", model.NewLP(), data.AmazonLP()},
		}
	}
	return []fig11Task{
		{"SVM/Reuters", model.NewSVM(), data.Reuters()},
		{"SVM/RCV1", model.NewSVM(), data.RCV1()},
		{"SVM/Music", model.NewSVM(), data.Music()},
		{"SVM/Forest", model.NewSVM(), data.Forest()},
		{"LR/Reuters", model.NewLR(), data.Reuters()},
		{"LR/RCV1", model.NewLR(), data.RCV1()},
		{"LR/Music", model.NewLR(), data.Music()},
		{"LR/Forest", model.NewLR(), data.Forest()},
		{"LS/Reuters", model.NewLS(), reutersRegression()},
		{"LS/Music", model.NewLS(), data.MusicRegression()},
		{"LS/Forest", model.NewLS(), forestRegression()},
		{"LP/Amazon", model.NewLP(), data.AmazonLP()},
		{"LP/Google", model.NewLP(), data.GoogleLP()},
		{"QP/Amazon", model.NewQP(), data.AmazonQP()},
		{"QP/Google", model.NewQP(), data.GoogleQP()},
	}
}

// reutersRegression returns a regression variant of the Reuters shape.
func reutersRegression() *data.Dataset {
	return data.GenerateSparse(data.SparseConfig{
		Name: "reuters", Rows: 800, Cols: 1600, NNZPerRow: 12,
		Noise: 0.1, Regression: true, Seed: 102,
	})
}

// forestRegression returns a regression variant of the Forest shape.
func forestRegression() *data.Dataset {
	return data.GenerateDense(data.DenseConfig{
		Name: "forest", Rows: 2500, Cols: 54, Noise: 0.1,
		Regression: true, Seed: 104,
	})
}

// Fig11 reproduces the end-to-end comparison table (Figure 11): time
// for each of the five systems to reach 50% and 1% of the optimal
// loss on every task, on local2.
func Fig11(quick bool) *Result {
	t := &Table{
		Name:  "fig11",
		Title: "End-to-end: simulated seconds to reach 50% / 1% of optimal loss (local2)",
		Header: []string{"task", "GraphLab 50%", "GraphChi 50%", "MLlib 50%", "Hogwild! 50%", "DW 50%",
			"GraphLab 1%", "GraphChi 1%", "MLlib 1%", "Hogwild! 1%", "DW 1%"},
	}
	metrics := map[string]float64{}
	maxEpochs := epochsArg(quick, 300)
	for _, task := range fig11Tasks(quick) {
		opt := OptimalLoss(task.spec, task.ds)
		row := []string{task.label}
		var cells50, cells1 []string
		for _, sys := range baseline.Systems() {
			res, err := baseline.Run(sys, task.spec, task.ds, numa.Local2, targetFor(opt, 1), maxEpochs)
			if err != nil {
				cells50 = append(cells50, "n/a")
				cells1 = append(cells1, "n/a")
				continue
			}
			t50, _, ok50 := timeToTarget(res.History, targetFor(opt, 50))
			if !ok50 {
				t50 = res.Time
			}
			t1, _, ok1 := timeToTarget(res.History, targetFor(opt, 1))
			if !ok1 {
				t1 = res.Time
			}
			cells50 = append(cells50, fmtSecs(t50, ok50))
			cells1 = append(cells1, fmtSecs(t1, ok1))
			metrics[fmt.Sprintf("t50/%s/%s", task.label, sys)] = t50.Seconds()
			metrics[fmt.Sprintf("t1/%s/%s", task.label, sys)] = t1.Seconds()
			if !ok1 {
				metrics[fmt.Sprintf("timeout1/%s/%s", task.label, sys)] = 1
			}
		}
		row = append(row, cells50...)
		row = append(row, cells1...)
		t.Rows = append(t.Rows, row)
	}
	t.Notes = "paper: DimmWitted converges in less time than every competitor on every task"
	return &Result{Table: t, Metrics: metrics}
}

// Fig12a reproduces Figure 12(a): time to reach each error level under
// forced access methods (best remaining tradeoffs), on local4.
func Fig12a(quick bool) *Result {
	t := &Table{
		Name:   "fig12a",
		Title:  "Access-method selection: simulated seconds to error targets (local4)",
		Header: []string{"task", "error", "row-wise", "column"},
	}
	metrics := map[string]float64{}
	cases := []struct {
		label string
		spec  model.Spec
		ds    *data.Dataset
		// best remaining tradeoffs per access method
		rowRep, colRep core.ModelReplication
	}{
		{"SVM/RCV1", model.NewSVM(), data.RCV1(), core.PerNode, core.PerMachine},
		{"SVM/Music", model.NewSVM(), data.Music(), core.PerNode, core.PerMachine},
		{"LP/Amazon", model.NewLP(), data.AmazonLP(), core.PerNode, core.PerMachine},
		{"LP/Google", model.NewLP(), data.GoogleLP(), core.PerNode, core.PerMachine},
	}
	if quick {
		cases = []struct {
			label          string
			spec           model.Spec
			ds             *data.Dataset
			rowRep, colRep core.ModelReplication
		}{cases[0], cases[2]} // one SVM, one LP
	}
	max := epochsArg(quick, 200)
	for _, c := range cases {
		opt := OptimalLoss(c.spec, c.ds)
		colAccess := c.spec.Supports()[0]
		if colAccess == model.RowWise {
			colAccess = c.spec.Supports()[1]
		}
		rowHist := runEngine(c.spec, c.ds, core.Plan{
			Access: model.RowWise, ModelRep: c.rowRep, DataRep: core.FullReplication,
			Machine: numa.Local4, Seed: 2,
		}).RunEpochs(max)
		colHist := runEngine(c.spec, c.ds, core.Plan{
			Access: colAccess, ModelRep: c.colRep, DataRep: core.FullReplication,
			Machine: numa.Local4, Seed: 2,
		}).RunEpochs(max)
		for _, pct := range []float64{100, 50, 10, 1} {
			target := targetFor(opt, pct)
			rt, _, rok := timeToTarget(rowHist, target)
			ct, _, cok := timeToTarget(colHist, target)
			if !rok {
				rt = rowHist[len(rowHist)-1].CumTime
			}
			if !cok {
				ct = colHist[len(colHist)-1].CumTime
			}
			t.Rows = append(t.Rows, []string{
				c.label, fmt.Sprintf("%.0f%%", pct), fmtSecs(rt, rok), fmtSecs(ct, cok),
			})
			metrics[fmt.Sprintf("row/%s/%.0f", c.label, pct)] = rt.Seconds()
			metrics[fmt.Sprintf("col/%s/%.0f", c.label, pct)] = ct.Seconds()
			if !rok {
				metrics[fmt.Sprintf("rowTimeout/%s/%.0f", c.label, pct)] = 1
			}
		}
	}
	t.Notes = "paper: row-wise dominates SVM; column-wise dominates LP (row-wise times out at 1%)"
	return &Result{Table: t, Metrics: metrics}
}

// Fig12b reproduces Figure 12(b): time to error targets under forced
// model replication, on local4.
func Fig12b(quick bool) *Result {
	t := &Table{
		Name:   "fig12b",
		Title:  "Model replication: simulated seconds to error targets (local4)",
		Header: []string{"task", "error", "PerCore", "PerNode", "PerMachine"},
	}
	metrics := map[string]float64{}
	cases := []struct {
		label  string
		spec   model.Spec
		ds     *data.Dataset
		access model.Access
	}{
		{"SVM/RCV1", model.NewSVM(), data.RCV1(), model.RowWise},
		{"SVM/Music", model.NewSVM(), data.Music(), model.RowWise},
		{"LP/Amazon", model.NewLP(), data.AmazonLP(), model.ColWise},
		{"LP/Google", model.NewLP(), data.GoogleLP(), model.ColWise},
	}
	if quick {
		cases = []struct {
			label  string
			spec   model.Spec
			ds     *data.Dataset
			access model.Access
		}{cases[0], cases[2]}
	}
	max := epochsArg(quick, 200)
	for _, c := range cases {
		opt := OptimalLoss(c.spec, c.ds)
		hists := map[core.ModelReplication][]core.EpochResult{}
		for _, rep := range []core.ModelReplication{core.PerCore, core.PerNode, core.PerMachine} {
			hists[rep] = runEngine(c.spec, c.ds, core.Plan{
				Access: c.access, ModelRep: rep, DataRep: core.FullReplication,
				Machine: numa.Local4, Seed: 2,
			}).RunEpochs(max)
		}
		for _, pct := range []float64{100, 50, 10, 1} {
			target := targetFor(opt, pct)
			row := []string{c.label, fmt.Sprintf("%.0f%%", pct)}
			for _, rep := range []core.ModelReplication{core.PerCore, core.PerNode, core.PerMachine} {
				tt, _, ok := timeToTarget(hists[rep], target)
				if !ok {
					tt = hists[rep][len(hists[rep])-1].CumTime
				}
				row = append(row, fmtSecs(tt, ok))
				metrics[fmt.Sprintf("%v/%s/%.0f", rep, c.label, pct)] = tt.Seconds()
				if !ok {
					metrics[fmt.Sprintf("timeout/%v/%s/%.0f", rep, c.label, pct)] = 1
				}
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = "paper: PerNode wins for SVM (12x at 50%); PerMachine wins for LP at 1% (14x)"
	return &Result{Table: t, Metrics: metrics}
}

// Fig13 reproduces Figure 13: throughput (GB/s of dataset processed
// per epoch) of the five systems on parallel sum and the statistical
// models, on local2.
func Fig13(quick bool) *Result {
	t := &Table{
		Name:   "fig13",
		Title:  "Throughput (simulated GB/s) on local2",
		Header: []string{"system", "SVM (RCV1)", "LP (Google)", "parallel sum"},
	}
	metrics := map[string]float64{}
	sumDS := data.ParallelSum(20000, 16)
	if quick {
		sumDS = data.ParallelSum(4000, 16)
	}
	svmDS := data.RCV1()
	lpDS := data.GoogleLP()
	tasks := []struct {
		name string
		spec model.Spec
		ds   *data.Dataset
	}{
		{"SVM (RCV1)", model.NewSVM(), svmDS},
		{"LP (Google)", model.NewLP(), lpDS},
		{"parallel sum", model.NewParallelSum(), sumDS},
	}
	for _, sys := range baseline.Systems() {
		row := []string{string(sys)}
		for _, task := range tasks {
			plan, err := baseline.PlanFor(sys, task.spec, task.ds, numa.Local2)
			if err != nil {
				row = append(row, "n/a")
				continue
			}
			eng := runEngine(task.spec, task.ds, plan)
			er := eng.RunEpoch()
			gbps := float64(task.ds.A.Bytes()) / er.SimTime.Seconds() / 1e9
			row = append(row, fmt.Sprintf("%.3g", gbps))
			metrics[fmt.Sprintf("gbps/%s/%s", sys, task.name)] = gbps
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = "paper: DW tops every column; 1.6x Hogwild! and ~20x GraphLab on parallel sum"
	return &Result{Table: t, Metrics: metrics}
}

// Fig14 reproduces Figure 14: the plans the optimizer chooses per
// dataset on local2.
func Fig14(quick bool) *Result {
	t := &Table{
		Name:   "fig14",
		Title:  "Optimizer plan choices (local2)",
		Header: []string{"task", "access", "model replication", "data replication"},
	}
	metrics := map[string]float64{}
	cases := []struct {
		label string
		spec  model.Spec
		ds    *data.Dataset
	}{
		{"SVM/Reuters", model.NewSVM(), data.Reuters()},
		{"SVM/RCV1", model.NewSVM(), data.RCV1()},
		{"SVM/Music", model.NewSVM(), data.Music()},
		{"LR/RCV1", model.NewLR(), data.RCV1()},
		{"LS/Music", model.NewLS(), data.MusicRegression()},
		{"LP/Amazon", model.NewLP(), data.AmazonLP()},
		{"LP/Google", model.NewLP(), data.GoogleLP()},
		{"QP/Amazon", model.NewQP(), data.AmazonQP()},
		{"QP/Google", model.NewQP(), data.GoogleQP()},
	}
	for _, c := range cases {
		plan, err := core.Choose(c.spec, c.ds, numa.Local2)
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{c.label, plan.Access.String(), plan.ModelRep.String(), plan.DataRep.String()})
		if plan.Access == model.RowWise {
			metrics["row/"+c.label] = 1
		} else {
			metrics["col/"+c.label] = 1
		}
	}
	t.Notes = "paper: row/PerNode/FullRepl for SVM-LR-LS; column/PerMachine/FullRepl for LP-QP"
	return &Result{Table: t, Metrics: metrics}
}
