// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 4, Section 5, Appendices A and C). Each
// driver returns a Result holding a printable paper-style table plus a
// metric map that the benchmark harness asserts shapes against.
// cmd/dwbench prints the tables; bench_test.go runs the same drivers
// under testing.B.
//
// Absolute values are simulated-clock seconds (see DESIGN.md); the
// comparisons the paper draws — who wins, by what factor, where
// crossovers fall — are the reproduction target, recorded side by side
// with the paper's numbers in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"dimmwitted/internal/core"
	"dimmwitted/internal/data"
	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
)

// Table is a paper-style result table.
type Table struct {
	// Name is the figure id ("fig7a", "fig11", ...).
	Name string
	// Title describes the experiment.
	Title string
	// Header holds the column names.
	Header []string
	// Rows holds the formatted cells.
	Rows [][]string
	// Notes holds a trailing free-form remark.
	Notes string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "== %s: %s ==\n", t.Name, t.Title)
	printRow := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				sb.WriteByte(' ')
			}
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	printRow(t.Header)
	for _, row := range t.Rows {
		printRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "note: %s\n", t.Notes)
	}
	fmt.Fprintln(w)
}

// Result is one driver's output.
type Result struct {
	// Table is the printable table.
	Table *Table
	// Metrics holds named scalar outcomes for assertions.
	Metrics map[string]float64
}

// Driver runs one experiment. quick trades sweep breadth for speed
// (used by the benchmark harness); the full run matches the paper's
// grid.
type Driver func(quick bool) *Result

// Registry maps figure ids to drivers, in paper order.
func Registry() []struct {
	Name   string
	Driver Driver
} {
	return []struct {
		Name   string
		Driver Driver
	}{
		{"fig6", Fig6},
		{"fig7a", Fig7a},
		{"fig7b", Fig7b},
		{"fig8a", Fig8a},
		{"fig8b", Fig8b},
		{"fig9a", Fig9a},
		{"fig9b", Fig9b},
		{"fig11", Fig11},
		{"fig12a", Fig12a},
		{"fig12b", Fig12b},
		{"fig13", Fig13},
		{"fig14", Fig14},
		{"fig15", Fig15},
		{"fig16a", Fig16a},
		{"fig16b", Fig16b},
		{"fig17a", Fig17a},
		{"fig17b", Fig17b},
		{"fig20", Fig20},
		{"fig21", Fig21},
		{"fig22", Fig22},
		{"appA", AppA},
		{"execwall", ExecWall},
	}
}

// Lookup returns the driver for a figure id.
func Lookup(name string) (Driver, bool) {
	for _, e := range Registry() {
		if e.Name == name {
			return e.Driver, true
		}
	}
	return nil, false
}

// optimal-loss cache: the paper obtains "the optimal loss" by running
// every system for an hour and taking the minimum; we run the
// optimizer-chosen plan long and take the minimum seen.
var (
	optMu    sync.Mutex
	optCache = map[string]float64{}
)

// OptimalLoss estimates the optimal loss of a task by running the
// optimizer-chosen plan for many epochs and returning the minimum.
func OptimalLoss(spec model.Spec, ds *data.Dataset) float64 {
	key := spec.Name() + "/" + ds.Name
	optMu.Lock()
	if v, ok := optCache[key]; ok {
		optMu.Unlock()
		return v
	}
	optMu.Unlock()
	plan, err := core.Choose(spec, ds, numa.Local2)
	if err != nil {
		panic(fmt.Sprintf("experiments: choose(%s): %v", key, err))
	}
	eng, err := core.New(spec, ds, plan)
	if err != nil {
		panic(fmt.Sprintf("experiments: new(%s): %v", key, err))
	}
	best := eng.Loss()
	for i := 0; i < 80; i++ {
		if l := eng.RunEpoch().Loss; l < best {
			best = l
		}
	}
	optMu.Lock()
	optCache[key] = best
	optMu.Unlock()
	return best
}

// targetFor converts an error-to-optimal percentage into an absolute
// loss target: "within p% of the optimal loss" = opt * (1 + p/100).
func targetFor(opt, pct float64) float64 { return opt * (1 + pct/100) }

// timeToTarget scans a run history for the first epoch at or below the
// target and returns its cumulative time, or (0, false).
func timeToTarget(hist []core.EpochResult, target float64) (time.Duration, int, bool) {
	for _, er := range hist {
		if er.Loss <= target {
			return er.CumTime, er.Epoch, true
		}
	}
	return 0, 0, false
}

// fmtSecs formats a simulated duration in seconds, with the paper's
// ">" convention for timeouts.
func fmtSecs(d time.Duration, converged bool) string {
	if !converged {
		return fmt.Sprintf("> %.4g", d.Seconds())
	}
	return fmt.Sprintf("%.4g", d.Seconds())
}

// runEngine builds an engine or panics — drivers own their inputs, so
// construction failure is a bug, not an input error.
func runEngine(spec model.Spec, ds *data.Dataset, plan core.Plan) *core.Engine {
	e, err := core.New(spec, ds, plan)
	if err != nil {
		panic(fmt.Sprintf("experiments: %s on %s: %v", spec.Name(), ds.Name, err))
	}
	return e
}

// epochsArg picks an epoch budget based on quick mode.
func epochsArg(quick bool, full int) int {
	if quick {
		if full > 30 {
			return 30
		}
	}
	return full
}
