// Package ckpt is the durability layer under the training/serving
// stack: a directory of checkpoint files, each one core.Snapshot (in
// the versioned binary codec) plus caller metadata, written with the
// classic database recipe — write to a temp file, fsync, rename into
// place, fsync the directory — so a crash at any point leaves either
// the old generation or the new one, never a torn file.
//
// Every Save of an id creates a new generation; Load returns the
// newest generation whose container and snapshot CRCs verify, falling
// back to older generations when the newest is corrupt (a torn disk,
// not a torn write). Stale generations beyond the retention count are
// garbage-collected on each Save, and temp files left by crashed
// writers are swept on Open.
package ckpt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dimmwitted/internal/core"
)

// container format: magic, version, id, metadata, snapshot, CRC. The
// snapshot bytes carry their own magic and CRC (core's codec); the
// container CRC additionally covers the id and metadata.
const (
	fileMagic   = "dwckpt"
	fileVersion = 1
	fileExt     = ".ckpt"
	tmpPrefix   = "tmp-"
	// genDigits is the fixed width of the hex generation segment in
	// file names, so lexical order is generation order.
	genDigits = 16
	// maxFieldLen caps decoded id/meta/snapshot lengths.
	maxFieldLen = 1 << 28
)

// Store is a file-backed checkpoint directory. All methods are safe
// for concurrent use.
type Store struct {
	dir  string
	keep int
	mu   sync.Mutex
}

// Options configures a Store.
type Options struct {
	// Keep is how many generations are retained per id; older ones are
	// garbage-collected on Save. 0 means 2 (the newest plus one fallback
	// for corruption recovery); negative disables collection.
	Keep int
}

// Open creates the directory if needed, sweeps temp files left by
// crashed writers, and returns a store over it.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("ckpt: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	if opts.Keep == 0 {
		opts.Keep = 2
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	for _, de := range names {
		if strings.HasPrefix(de.Name(), tmpPrefix) {
			_ = os.Remove(filepath.Join(dir, de.Name()))
		}
	}
	return &Store{dir: dir, keep: opts.Keep}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Entry describes one stored checkpoint for listings.
type Entry struct {
	// ID is the checkpoint's identifier.
	ID string
	// Generation is the newest stored generation.
	Generation uint64
	// Size is that generation's file size in bytes.
	Size int64
	// Modified is that generation's file modification time.
	Modified time.Time
}

// Save writes a new generation of id containing the snapshot and the
// caller's opaque metadata (nil is fine), returning the generation
// number and the bytes written. The write is atomic: concurrent readers
// see either the previous generation or the new one.
func (s *Store) Save(id string, snap core.Snapshot, meta []byte) (uint64, int, error) {
	if id == "" {
		return 0, 0, fmt.Errorf("ckpt: empty checkpoint id")
	}
	body := encodeContainer(id, meta, core.EncodeSnapshot(snap))

	s.mu.Lock()
	defer s.mu.Unlock()
	gens, err := s.generationsLocked(id)
	if err != nil {
		return 0, 0, err
	}
	gen := uint64(1)
	if len(gens) > 0 {
		gen = gens[len(gens)-1] + 1
	}

	tmp, err := os.CreateTemp(s.dir, tmpPrefix+"*")
	if err != nil {
		return 0, 0, fmt.Errorf("ckpt: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { _ = os.Remove(tmpName) }
	if _, err := tmp.Write(body); err != nil {
		_ = tmp.Close()
		cleanup()
		return 0, 0, fmt.Errorf("ckpt: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		cleanup()
		return 0, 0, fmt.Errorf("ckpt: %w", err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return 0, 0, fmt.Errorf("ckpt: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(s.dir, fileName(id, gen))); err != nil {
		cleanup()
		return 0, 0, fmt.Errorf("ckpt: %w", err)
	}
	s.syncDir()
	s.gcLocked(id, append(gens, gen))
	return gen, len(body), nil
}

// syncDir fsyncs the store directory so a just-renamed file survives a
// crash; best-effort on filesystems that reject directory fsync.
func (s *Store) syncDir() {
	if d, err := os.Open(s.dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// gcLocked removes generations beyond the retention count, oldest
// first. Callers hold s.mu.
func (s *Store) gcLocked(id string, gens []uint64) {
	if s.keep < 0 || len(gens) <= s.keep {
		return
	}
	for _, g := range gens[:len(gens)-s.keep] {
		_ = os.Remove(filepath.Join(s.dir, fileName(id, g)))
	}
}

// Load returns the newest verifiable generation of id, the metadata
// saved with it, and its generation number. Corrupt generations are
// skipped in favor of older ones; os.ErrNotExist is wrapped when no
// generation exists at all.
func (s *Store) Load(id string) (core.Snapshot, []byte, uint64, error) {
	s.mu.Lock()
	gens, err := s.generationsLocked(id)
	s.mu.Unlock()
	if err != nil {
		return core.Snapshot{}, nil, 0, err
	}
	if len(gens) == 0 {
		return core.Snapshot{}, nil, 0, fmt.Errorf("ckpt: no checkpoint for %q: %w", id, os.ErrNotExist)
	}
	var newestErr error
	for i := len(gens) - 1; i >= 0; i-- {
		snap, meta, err := s.loadGeneration(id, gens[i])
		if err == nil {
			return snap, meta, gens[i], nil
		}
		if newestErr == nil {
			newestErr = err
		}
	}
	return core.Snapshot{}, nil, 0, fmt.Errorf("ckpt: every generation of %q is unreadable, newest error: %w", id, newestErr)
}

// loadGeneration reads and verifies one generation file.
func (s *Store) loadGeneration(id string, gen uint64) (core.Snapshot, []byte, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, fileName(id, gen)))
	if err != nil {
		return core.Snapshot{}, nil, err
	}
	gotID, meta, snapBytes, err := decodeContainer(data)
	if err != nil {
		return core.Snapshot{}, nil, err
	}
	if gotID != id {
		return core.Snapshot{}, nil, fmt.Errorf("ckpt: file for %q contains checkpoint of %q", id, gotID)
	}
	snap, err := core.DecodeSnapshot(snapBytes)
	if err != nil {
		return core.Snapshot{}, nil, err
	}
	return snap, meta, nil
}

// Delete removes every generation of id. Deleting an absent id is a
// no-op.
func (s *Store) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	gens, err := s.generationsLocked(id)
	if err != nil {
		return err
	}
	for _, g := range gens {
		if err := os.Remove(filepath.Join(s.dir, fileName(id, g))); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("ckpt: %w", err)
		}
	}
	return nil
}

// IDs returns every stored id in lexical order.
func (s *Store) IDs() ([]string, error) {
	entries, err := s.List()
	if err != nil {
		return nil, err
	}
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.ID
	}
	return out, nil
}

// List returns the newest generation of every stored id, in lexical id
// order. Unparseable file names are ignored (they are not ours).
func (s *Store) List() ([]Entry, error) {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	newest := map[string]Entry{}
	for _, de := range des {
		id, gen, ok := parseFileName(de.Name())
		if !ok {
			continue
		}
		if prev, exists := newest[id]; exists && prev.Generation >= gen {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		newest[id] = Entry{ID: id, Generation: gen, Size: info.Size(), Modified: info.ModTime()}
	}
	out := make([]Entry, 0, len(newest))
	for _, e := range newest {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// generationsLocked returns id's stored generations in ascending
// order. Callers hold s.mu (or tolerate racing writers).
func (s *Store) generationsLocked(id string) ([]uint64, error) {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	var gens []uint64
	for _, de := range des {
		gotID, gen, ok := parseFileName(de.Name())
		if ok && gotID == id {
			gens = append(gens, gen)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// fileName builds "<escaped-id>.<gen:016x>.ckpt".
func fileName(id string, gen uint64) string {
	return fmt.Sprintf("%s.%0*x%s", escapeID(id), genDigits, gen, fileExt)
}

// parseFileName inverts fileName. The generation segment has fixed
// width, so ids containing dots parse unambiguously from the right.
func parseFileName(name string) (id string, gen uint64, ok bool) {
	if !strings.HasSuffix(name, fileExt) || strings.HasPrefix(name, tmpPrefix) {
		return "", 0, false
	}
	base := strings.TrimSuffix(name, fileExt)
	if len(base) < genDigits+2 || base[len(base)-genDigits-1] != '.' {
		return "", 0, false
	}
	gen, err := strconv.ParseUint(base[len(base)-genDigits:], 16, 64)
	if err != nil {
		return "", 0, false
	}
	id, err = unescapeID(base[:len(base)-genDigits-1])
	if err != nil {
		return "", 0, false
	}
	return id, gen, true
}

// plainIDByte reports whether b passes into file names unescaped.
func plainIDByte(b byte) bool {
	switch {
	case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b >= '0' && b <= '9':
		return true
	case b == '-' || b == '_' || b == '.':
		return true
	}
	return false
}

// escapeID makes an arbitrary id filesystem-safe, reversibly: bytes
// outside [A-Za-z0-9._-] (and '%' itself) become %XX.
func escapeID(id string) string {
	var sb strings.Builder
	for i := 0; i < len(id); i++ {
		b := id[i]
		if plainIDByte(b) && b != '%' {
			sb.WriteByte(b)
		} else {
			fmt.Fprintf(&sb, "%%%02X", b)
		}
	}
	return sb.String()
}

// unescapeID inverts escapeID.
func unescapeID(s string) (string, error) {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '%' {
			sb.WriteByte(s[i])
			continue
		}
		if i+2 >= len(s) {
			return "", fmt.Errorf("ckpt: truncated escape in %q", s)
		}
		v, err := strconv.ParseUint(s[i+1:i+3], 16, 8)
		if err != nil {
			return "", fmt.Errorf("ckpt: bad escape in %q", s)
		}
		sb.WriteByte(byte(v))
		i += 2
	}
	return sb.String(), nil
}

// encodeContainer frames id, metadata and snapshot bytes with the
// container magic, version and CRC.
func encodeContainer(id string, meta, snapBytes []byte) []byte {
	buf := make([]byte, 0, len(fileMagic)+2+12+len(id)+len(meta)+len(snapBytes)+4)
	buf = append(buf, fileMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, fileVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(id)))
	buf = append(buf, id...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(meta)))
	buf = append(buf, meta...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(snapBytes)))
	buf = append(buf, snapBytes...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf
}

// decodeContainer verifies and unframes a container.
func decodeContainer(data []byte) (id string, meta, snapBytes []byte, err error) {
	hdr := len(fileMagic) + 2
	if len(data) < hdr+12+4 {
		return "", nil, nil, fmt.Errorf("ckpt: file truncated (%d bytes)", len(data))
	}
	if string(data[:len(fileMagic)]) != fileMagic {
		return "", nil, nil, fmt.Errorf("ckpt: bad magic %q", data[:len(fileMagic)])
	}
	if v := binary.LittleEndian.Uint16(data[len(fileMagic):]); v != fileVersion {
		return "", nil, nil, fmt.Errorf("ckpt: container version %d, this build reads version %d", v, fileVersion)
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(trailer), crc32.ChecksumIEEE(body); got != want {
		return "", nil, nil, fmt.Errorf("ckpt: CRC mismatch (stored %08x, computed %08x)", got, want)
	}
	off := hdr
	next := func(what string) ([]byte, error) {
		if off+4 > len(body) {
			return nil, fmt.Errorf("ckpt: %s length truncated", what)
		}
		n := int(binary.LittleEndian.Uint32(body[off:]))
		off += 4
		if n > maxFieldLen || n > len(body)-off {
			return nil, fmt.Errorf("ckpt: %s length %d exceeds file", what, n)
		}
		out := body[off : off+n]
		off += n
		return out, nil
	}
	idb, err := next("id")
	if err != nil {
		return "", nil, nil, err
	}
	meta, err = next("metadata")
	if err != nil {
		return "", nil, nil, err
	}
	snapBytes, err = next("snapshot")
	if err != nil {
		return "", nil, nil, err
	}
	if off != len(body) {
		return "", nil, nil, fmt.Errorf("ckpt: %d trailing bytes", len(body)-off)
	}
	if len(meta) == 0 {
		meta = nil
	}
	return string(idb), meta, snapBytes, nil
}
