package ckpt

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dimmwitted/internal/core"
)

func testSnap(epoch int) core.Snapshot {
	return core.Snapshot{
		Workload:  core.WorkloadGLM,
		Spec:      "svm",
		Dataset:   "reuters",
		Epoch:     epoch,
		Loss:      float64(epoch) * 0.25,
		X:         []float64{1, 2, 3, float64(epoch)},
		EngineRNG: core.RNGState{Seed: 1, Draws: uint64(epoch)},
	}
}

func mustOpen(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := mustOpen(t, Options{})
	gen, n, err := s.Save("job-1", testSnap(5), []byte(`{"max_epochs":50}`))
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 || n == 0 {
		t.Fatalf("gen=%d bytes=%d", gen, n)
	}
	snap, meta, gotGen, err := s.Load("job-1")
	if err != nil {
		t.Fatal(err)
	}
	if gotGen != 1 || snap.Epoch != 5 || string(meta) != `{"max_epochs":50}` {
		t.Fatalf("load: gen=%d epoch=%d meta=%q", gotGen, snap.Epoch, meta)
	}
	for i, x := range snap.X {
		if math.Float64bits(x) != math.Float64bits(testSnap(5).X[i]) {
			t.Fatalf("X[%d] changed", i)
		}
	}
}

func TestLoadMissing(t *testing.T) {
	s := mustOpen(t, Options{})
	if _, _, _, err := s.Load("nope"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("want ErrNotExist, got %v", err)
	}
}

func TestGenerationsAdvanceAndGC(t *testing.T) {
	s := mustOpen(t, Options{Keep: 2})
	for ep := 1; ep <= 5; ep++ {
		if _, _, err := s.Save("job-1", testSnap(ep), nil); err != nil {
			t.Fatal(err)
		}
	}
	snap, _, gen, err := s.Load("job-1")
	if err != nil {
		t.Fatal(err)
	}
	if gen != 5 || snap.Epoch != 5 {
		t.Fatalf("latest gen=%d epoch=%d, want 5/5", gen, snap.Epoch)
	}
	files, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("GC kept %d generations, want 2", len(files))
	}
}

func TestCorruptNewestFallsBackToOlder(t *testing.T) {
	s := mustOpen(t, Options{Keep: 3})
	if _, _, err := s.Save("job-1", testSnap(1), nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Save("job-1", testSnap(2), nil); err != nil {
		t.Fatal(err)
	}
	// Flip a payload bit in the newest generation.
	path := filepath.Join(s.Dir(), fileName("job-1", 2))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	snap, _, gen, err := s.Load("job-1")
	if err != nil {
		t.Fatalf("load with corrupt newest: %v", err)
	}
	if gen != 1 || snap.Epoch != 1 {
		t.Fatalf("fallback loaded gen=%d epoch=%d, want 1/1", gen, snap.Epoch)
	}

	// With every generation corrupt, Load must fail with the CRC story.
	path1 := filepath.Join(s.Dir(), fileName("job-1", 1))
	data1, _ := os.ReadFile(path1)
	data1[len(data1)/2] ^= 0x40
	_ = os.WriteFile(path1, data1, 0o644)
	if _, _, _, err := s.Load("job-1"); err == nil || !strings.Contains(err.Error(), "unreadable") {
		t.Fatalf("want unreadable error, got %v", err)
	}
}

func TestTruncatedFileRejected(t *testing.T) {
	s := mustOpen(t, Options{})
	if _, _, err := s.Save("job-1", testSnap(1), nil); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.Dir(), fileName("job-1", 1))
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.Load("job-1"); err == nil {
		t.Fatal("load accepted truncated file")
	}
}

func TestDeleteRemovesAllGenerations(t *testing.T) {
	s := mustOpen(t, Options{Keep: 5})
	for ep := 1; ep <= 3; ep++ {
		if _, _, err := s.Save("job-1", testSnap(ep), nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.Save("job-2", testSnap(9), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("job-1"); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.Load("job-1"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("deleted id still loads: %v", err)
	}
	if _, _, _, err := s.Load("job-2"); err != nil {
		t.Fatalf("unrelated id lost: %v", err)
	}
	if err := s.Delete("never-existed"); err != nil {
		t.Fatalf("deleting absent id: %v", err)
	}
}

func TestListAndIDs(t *testing.T) {
	s := mustOpen(t, Options{})
	for _, id := range []string{"b", "a", "c"} {
		if _, _, err := s.Save(id, testSnap(1), nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.Save("b", testSnap(2), nil); err != nil {
		t.Fatal(err)
	}
	entries, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("%d entries, want 3", len(entries))
	}
	wantIDs := []string{"a", "b", "c"}
	for i, e := range entries {
		if e.ID != wantIDs[i] {
			t.Fatalf("entry %d is %q, want %q", i, e.ID, wantIDs[i])
		}
	}
	if entries[1].Generation != 2 {
		t.Fatalf("b's newest generation = %d, want 2", entries[1].Generation)
	}
}

func TestAwkwardIDsRoundTrip(t *testing.T) {
	s := mustOpen(t, Options{})
	ids := []string{"job-1", "with space", "slash/../escape", "dots...everywhere", "per%cent", "ünïcode"}
	for _, id := range ids {
		if _, _, err := s.Save(id, testSnap(3), nil); err != nil {
			t.Fatalf("save %q: %v", id, err)
		}
	}
	for _, id := range ids {
		if _, _, _, err := s.Load(id); err != nil {
			t.Fatalf("load %q: %v", id, err)
		}
	}
	got, err := s.IDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ids) {
		t.Fatalf("%d ids, want %d: %q", len(got), len(ids), got)
	}
	// Escaped names must stay inside the store directory.
	des, _ := os.ReadDir(s.Dir())
	for _, de := range des {
		if strings.Contains(de.Name(), "/") {
			t.Fatalf("file name %q escaped the directory", de.Name())
		}
	}
}

func TestOpenSweepsStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, tmpPrefix+"12345"), []byte("torn write"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, tmpPrefix+"12345")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("stale temp file survived Open")
	}
	entries, err := s.List()
	if err != nil || len(entries) != 0 {
		t.Fatalf("entries=%v err=%v", entries, err)
	}
}

func TestPersistAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s1.Save("job-1", testSnap(4), []byte("m")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap, meta, _, err := s2.Load("job-1")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch != 4 || string(meta) != "m" {
		t.Fatalf("reopened store returned epoch=%d meta=%q", snap.Epoch, meta)
	}
}
