package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s != (HistogramSnapshot{}) {
		t.Fatalf("empty snapshot %+v, want zero", s)
	}
}

func TestHistogramSummaries(t *testing.T) {
	var h Histogram
	durations := []time.Duration{
		500 * time.Nanosecond, // bucket 0
		3 * time.Microsecond,
		40 * time.Microsecond,
		900 * time.Microsecond,
		2 * time.Millisecond,
		7 * time.Millisecond,
		20 * time.Millisecond,
		150 * time.Millisecond,
	}
	var sum time.Duration
	for _, d := range durations {
		h.Observe(d)
		sum += d
	}
	s := h.Snapshot()
	if s.Count != int64(len(durations)) {
		t.Errorf("count %d, want %d", s.Count, len(durations))
	}
	wantMean := sum.Seconds() * 1e3 / float64(len(durations))
	if diff := s.MeanMs - wantMean; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("mean %v ms, want %v", s.MeanMs, wantMean)
	}
	if s.MaxMs != 150 {
		t.Errorf("max %v ms, want 150", s.MaxMs)
	}
	if !(s.P50Ms <= s.P95Ms && s.P95Ms <= s.P99Ms && s.P99Ms <= s.MaxMs+1e-9) {
		t.Errorf("percentiles not monotone: %+v", s)
	}
	// The median of the 8 observations is between 900µs and 2ms; the
	// bucket estimate must land within a factor of two of that range.
	if s.P50Ms < 0.45 || s.P50Ms > 4 {
		t.Errorf("p50 %v ms, want within 2x of [0.9, 2]", s.P50Ms)
	}
	// p99 of 8 points is the maximum's bucket: [128ms, 256ms).
	if s.P99Ms < 64 || s.P99Ms > 256 {
		t.Errorf("p99 %v ms, want in the max's bucket neighbourhood", s.P99Ms)
	}
}

func TestHistogramUniformPercentiles(t *testing.T) {
	var h Histogram
	// 1000 observations uniform over (0, 100ms]: p50 ≈ 50ms, p95 ≈
	// 95ms, p99 ≈ 99ms, each within its power-of-two bucket (2x).
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * 100 * time.Microsecond)
	}
	s := h.Snapshot()
	checks := []struct {
		name      string
		got, want float64
	}{
		{"p50", s.P50Ms, 50},
		{"p95", s.P95Ms, 95},
		{"p99", s.P99Ms, 99},
	}
	for _, c := range checks {
		if c.got < c.want/2 || c.got > c.want*2 {
			t.Errorf("%s = %v ms, want within 2x of %v", c.name, c.got, c.want)
		}
	}
	if s.MaxMs != 100 {
		t.Errorf("max %v, want 100", s.MaxMs)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const goroutines, per = 16, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*per+i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count %d, want %d", s.Count, goroutines*per)
	}
	if !(s.P50Ms <= s.P95Ms && s.P95Ms <= s.P99Ms) {
		t.Fatalf("percentiles not monotone: %+v", s)
	}
}

func TestBucketIndexBounds(t *testing.T) {
	if bucketIndex(0) != 0 || bucketIndex(999*time.Nanosecond) != 0 {
		t.Error("sub-microsecond durations must land in bucket 0")
	}
	if bucketIndex(time.Microsecond) != 1 {
		t.Errorf("1µs in bucket %d, want 1", bucketIndex(time.Microsecond))
	}
	if got := bucketIndex(24 * time.Hour); got != latencyBuckets-1 {
		t.Errorf("huge duration in bucket %d, want clamped to %d", got, latencyBuckets-1)
	}
	for i := 1; i < latencyBuckets; i++ {
		lo, hi := bucketBoundsMicros(i)
		if lo >= hi {
			t.Fatalf("bucket %d bounds [%v, %v) inverted", i, lo, hi)
		}
	}
}
