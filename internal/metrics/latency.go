package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// latencyBuckets is the number of exponential histogram buckets.
// Bucket 0 holds sub-microsecond observations; bucket i (i >= 1) holds
// durations in [2^(i-1), 2^i) microseconds, so the last bucket starts
// at 2^32 µs ≈ 71 minutes — far beyond any HTTP handler.
const latencyBuckets = 34

// Histogram is a fixed-bucket exponential latency histogram. All
// methods are safe for concurrent use and the hot path (Observe) is
// lock-free: one atomic add per bucket, sum, and count. The zero value
// is ready.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds
	buckets [latencyBuckets]atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
	h.buckets[bucketIndex(d)].Add(1)
}

// bucketIndex maps a duration to its bucket: the bit length of the
// duration in whole microseconds, clamped to the last bucket.
func bucketIndex(d time.Duration) int {
	i := bits.Len64(uint64(d / time.Microsecond))
	if i >= latencyBuckets {
		return latencyBuckets - 1
	}
	return i
}

// bucketBoundsMicros returns bucket i's [lower, upper) bounds in
// microseconds.
func bucketBoundsMicros(i int) (float64, float64) {
	if i == 0 {
		return 0, 1
	}
	return float64(uint64(1) << (i - 1)), float64(uint64(1) << i)
}

// HistogramSnapshot is a point-in-time percentile summary, shaped for
// JSON export. Percentiles are estimated by linear interpolation
// inside the matched power-of-two bucket, so they carry the bucket's
// relative error (at most 2x) but are always mutually monotone:
// P50 <= P95 <= P99 <= Max is an invariant, not a likelihood.
type HistogramSnapshot struct {
	Count  int64   `json:"count"`
	SumMs  float64 `json:"sum_ms"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// Snapshot summarises the observations so far. Buckets are read once
// into a private copy, so the reported percentiles are consistent with
// each other even while Observe runs concurrently.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var counts [latencyBuckets]int64
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return HistogramSnapshot{}
	}
	maxMs := float64(h.max.Load()) / 1e6
	// A percentile interpolated inside the top occupied bucket can
	// overshoot the true maximum; clamp so Max bounds every quantile.
	clamp := func(v float64) float64 {
		if v > maxMs {
			return maxMs
		}
		return v
	}
	sum := h.sum.Load()
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		SumMs:  float64(sum) / 1e6,
		MeanMs: float64(sum) / float64(total) / 1e6,
		P50Ms:  clamp(percentileMs(&counts, total, 0.50)),
		P95Ms:  clamp(percentileMs(&counts, total, 0.95)),
		P99Ms:  clamp(percentileMs(&counts, total, 0.99)),
		MaxMs:  maxMs,
	}
	return s
}

// HistogramBucket is one cumulative bucket of a Prometheus-shaped
// histogram export: Count observations were at most LE seconds.
type HistogramBucket struct {
	// LE is the bucket's inclusive upper bound in seconds
	// (math.Inf(1) for the final catch-all bucket).
	LE float64
	// Count is the cumulative observation count up to LE.
	Count int64
}

// HistogramExport is a Prometheus-shaped view of the histogram:
// cumulative le-bound buckets plus the _count and _sum series.
type HistogramExport struct {
	Count      int64
	SumSeconds float64
	Buckets    []HistogramBucket
}

// Export snapshots the histogram in Prometheus exposition shape. The
// bucket copy is read once, so the cumulative counts are mutually
// consistent even while Observe runs concurrently (Count is read last
// and may run slightly ahead of the final bucket; scrapes tolerate
// that the same way they tolerate any non-atomic multi-series read).
func (h *Histogram) Export() HistogramExport {
	out := HistogramExport{Buckets: make([]HistogramBucket, 0, latencyBuckets)}
	var cum int64
	for i := 0; i < latencyBuckets; i++ {
		cum += h.buckets[i].Load()
		_, hi := bucketBoundsMicros(i)
		le := hi / 1e6
		if i == latencyBuckets-1 {
			le = math.Inf(1)
		}
		out.Buckets = append(out.Buckets, HistogramBucket{LE: le, Count: cum})
	}
	out.SumSeconds = float64(h.sum.Load()) / 1e9
	out.Count = cum
	return out
}

// percentileMs estimates the q-th percentile in milliseconds from a
// consistent bucket copy: find the bucket holding the q*total-th
// observation and interpolate linearly inside its bounds.
func percentileMs(counts *[latencyBuckets]int64, total int64, q float64) float64 {
	target := int64(q*float64(total) + 0.5)
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var cum int64
	for i := range counts {
		n := counts[i]
		if n == 0 {
			continue
		}
		if cum+n >= target {
			lo, hi := bucketBoundsMicros(i)
			frac := float64(target-cum) / float64(n)
			return (lo + frac*(hi-lo)) / 1e3
		}
		cum += n
	}
	// Unreachable: target <= total, so the loop matched a bucket.
	return 0
}
