package metrics

// ClusterCounters are the coordinator's monotonically increasing
// counters for one peer: training rounds driven, shard rows and model
// bytes moved over the wire, and failovers absorbed. The coordinator
// keeps one set per peer so /metrics can break the cluster down by
// node. All methods are safe for concurrent use; the zero value is
// ready. Padding as in ServeCounters — the transfer counters are
// bumped from concurrent per-peer round goroutines.
type ClusterCounters struct {
	epochs        counter
	rounds        counter
	shardRows     counter
	shardBytes    counter
	replicaPulls  counter
	replicaPushes counter
	replicaBytes  counter
	failovers     counter
	proxied       counter
	proxyFallback counter
}

// Round records one completed training round that advanced the peer's
// engine by epochs epochs.
func (c *ClusterCounters) Round(epochs int) {
	c.rounds.Add(1)
	c.epochs.Add(int64(epochs))
}

// ShardPush records rows rows (bytes encoded bytes) shipped to the
// peer over the append API.
func (c *ClusterCounters) ShardPush(rows, bytes int) {
	c.shardRows.Add(int64(rows))
	c.shardBytes.Add(int64(bytes))
}

// ReplicaPull records one model snapshot of n bytes fetched from the
// peer.
func (c *ClusterCounters) ReplicaPull(n int) {
	c.replicaPulls.Add(1)
	c.replicaBytes.Add(int64(n))
}

// ReplicaPush records one model snapshot of n bytes installed on the
// peer.
func (c *ClusterCounters) ReplicaPush(n int) {
	c.replicaPushes.Add(1)
	c.replicaBytes.Add(int64(n))
}

// Failover records this peer absorbing a dead peer's shard.
func (c *ClusterCounters) Failover() { c.failovers.Add(1) }

// ProxiedPredict records one /v1/predict forwarded to this peer as
// the ring owner.
func (c *ClusterCounters) ProxiedPredict() { c.proxied.Add(1) }

// ProxyFallback records one predict re-routed to this peer because a
// ring predecessor was unreachable.
func (c *ClusterCounters) ProxyFallback() { c.proxyFallback.Add(1) }

// ClusterSnapshot is a point-in-time copy of one peer's counters,
// shaped for JSON export.
type ClusterSnapshot struct {
	Rounds        int64 `json:"rounds"`
	Epochs        int64 `json:"epochs"`
	ShardRows     int64 `json:"shard_rows"`
	ShardBytes    int64 `json:"shard_bytes"`
	ReplicaPulls  int64 `json:"replica_pulls"`
	ReplicaPushes int64 `json:"replica_pushes"`
	ReplicaBytes  int64 `json:"replica_bytes"`
	Failovers     int64 `json:"failovers"`
	ProxiedPreds  int64 `json:"proxied_predicts"`
	ProxyFallback int64 `json:"proxy_fallbacks"`
}

// Snapshot returns a consistent-enough copy for reporting: each field
// is read atomically, the set is not a single linearization point.
func (c *ClusterCounters) Snapshot() ClusterSnapshot {
	return ClusterSnapshot{
		Rounds:        c.rounds.Load(),
		Epochs:        c.epochs.Load(),
		ShardRows:     c.shardRows.Load(),
		ShardBytes:    c.shardBytes.Load(),
		ReplicaPulls:  c.replicaPulls.Load(),
		ReplicaPushes: c.replicaPushes.Load(),
		ReplicaBytes:  c.replicaBytes.Load(),
		Failovers:     c.failovers.Load(),
		ProxiedPreds:  c.proxied.Load(),
		ProxyFallback: c.proxyFallback.Load(),
	}
}
