package metrics

import "testing"

func TestClusterCountersSnapshot(t *testing.T) {
	var c ClusterCounters
	c.Round(5)
	c.Round(3)
	c.ShardPush(100, 4096)
	c.ReplicaPull(256)
	c.ReplicaPush(256)
	c.Failover()
	c.ProxiedPredict()
	c.ProxiedPredict()
	c.ProxyFallback()

	s := c.Snapshot()
	want := ClusterSnapshot{
		Rounds:        2,
		Epochs:        8,
		ShardRows:     100,
		ShardBytes:    4096,
		ReplicaPulls:  1,
		ReplicaPushes: 1,
		ReplicaBytes:  512,
		Failovers:     1,
		ProxiedPreds:  2,
		ProxyFallback: 1,
	}
	if s != want {
		t.Fatalf("snapshot = %+v, want %+v", s, want)
	}
}
