package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleCurve() *Curve {
	c := &Curve{Name: "run"}
	losses := []float64{1.0, 0.5, 0.3, 0.25, 0.249}
	for i, l := range losses {
		if err := c.Append(Point{Epoch: i + 1, Time: time.Duration(i+1) * time.Millisecond, Loss: l}); err != nil {
			panic(err)
		}
	}
	return c
}

func TestAppendOrdering(t *testing.T) {
	c := &Curve{}
	if err := c.Append(Point{Epoch: 1, Loss: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Append(Point{Epoch: 1, Loss: 0.5}); err == nil {
		t.Error("duplicate epoch accepted")
	}
	if err := c.Append(Point{Epoch: 0, Loss: 0.5}); err == nil {
		t.Error("regressing epoch accepted")
	}
}

func TestBestAndFinal(t *testing.T) {
	c := sampleCurve()
	if c.Best() != 0.249 {
		t.Errorf("Best = %v", c.Best())
	}
	p, ok := c.Final()
	if !ok || p.Epoch != 5 {
		t.Errorf("Final = %+v, %v", p, ok)
	}
	empty := &Curve{}
	if !math.IsInf(empty.Best(), 1) {
		t.Error("empty Best not +Inf")
	}
	if _, ok := empty.Final(); ok {
		t.Error("empty Final ok")
	}
}

func TestTimeToAndEpochsTo(t *testing.T) {
	c := sampleCurve()
	d, ok := c.TimeTo(0.3)
	if !ok || d != 3*time.Millisecond {
		t.Errorf("TimeTo(0.3) = %v, %v", d, ok)
	}
	e, ok := c.EpochsTo(0.5)
	if !ok || e != 2 {
		t.Errorf("EpochsTo(0.5) = %v, %v", e, ok)
	}
	if _, ok := c.TimeTo(0.1); ok {
		t.Error("unreachable target reported reached")
	}
}

func TestWithinPct(t *testing.T) {
	if got := WithinPct(0.2, 50); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("WithinPct = %v", got)
	}
}

func TestPlateaued(t *testing.T) {
	c := sampleCurve()
	if !c.Plateaued(1, 0.05) {
		t.Error("flat tail not detected")
	}
	if c.Plateaued(4, 0.05) {
		t.Error("improving window flagged as plateau")
	}
	if (&Curve{}).Plateaued(2, 0.05) {
		t.Error("empty curve plateaued")
	}
}

func TestSpeedup(t *testing.T) {
	fast := sampleCurve()
	slow := &Curve{Name: "slow"}
	for i, l := range []float64{1.0, 0.8, 0.6, 0.45, 0.3} {
		_ = slow.Append(Point{Epoch: i + 1, Time: time.Duration(i+1) * 10 * time.Millisecond, Loss: l})
	}
	s, ok := fast.Speedup(slow, 0.3)
	if !ok || math.Abs(s-(50.0/3.0)) > 1e-9 {
		t.Errorf("Speedup = %v, %v", s, ok)
	}
	if _, ok := fast.Speedup(slow, 0.01); ok {
		t.Error("speedup to unreachable target reported")
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleCurve()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "name,epoch,seconds,wall_seconds,loss\n") {
		t.Error("missing header")
	}
	if strings.Count(out, "\n") != 6 {
		t.Errorf("want 6 lines, got %d:\n%s", strings.Count(out, "\n"), out)
	}
	if !strings.Contains(out, "run,3,0.003,") || !strings.Contains(out, ",0.3\n") {
		t.Errorf("missing row: %s", out)
	}
}

func TestSummarize(t *testing.T) {
	a, b, c := sampleCurve(), sampleCurve(), &Curve{Name: "short"}
	_ = c.Append(Point{Epoch: 1, Loss: 0.9})
	s := Summarize([]*Curve{a, b, c})
	if s.Runs != 3 {
		t.Errorf("Runs = %d", s.Runs)
	}
	if s.MedianBest != 0.249 {
		t.Errorf("MedianBest = %v", s.MedianBest)
	}
	if s.MedianEpochs != 5 {
		t.Errorf("MedianEpochs = %d", s.MedianEpochs)
	}
	if got := Summarize(nil); got.Runs != 0 {
		t.Error("empty summarize")
	}
}

// Property: TimeTo is monotone in the target — a looser target is
// reached no later than a tighter one.
func TestTimeToMonotoneProperty(t *testing.T) {
	c := sampleCurve()
	f := func(a, b uint8) bool {
		lo := 0.2 + float64(a)/255
		hi := lo + float64(b)/255
		tLo, okLo := c.TimeTo(lo)
		tHi, okHi := c.TimeTo(hi)
		if okLo && !okHi {
			return false // looser target must also be reachable
		}
		if okLo && okHi {
			return tHi <= tLo
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
