package metrics

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// BenchmarkCountersPadding measures the false sharing the padded
// counter type removes. Each goroutine increments its own slot — no
// logical contention at all — so any slowdown in the packed variant is
// purely adjacent counters bouncing the same cache line between cores.
func BenchmarkCountersPadding(b *testing.B) {
	b.Run("packed", func(b *testing.B) {
		var slots [8]atomic.Int64
		hammerSlots(b, func(i int) *atomic.Int64 { return &slots[i] })
	})
	b.Run("padded", func(b *testing.B) {
		var slots [8]counter
		hammerSlots(b, func(i int) *atomic.Int64 { return &slots[i].Int64 })
	})
}

// hammerSlots runs up to eight goroutines, each adding b.N times to its
// private slot, and waits for all of them.
func hammerSlots(b *testing.B, slot func(int) *atomic.Int64) {
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	var wg sync.WaitGroup
	b.ResetTimer()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(c *atomic.Int64) {
			defer wg.Done()
			for i := 0; i < b.N; i++ {
				c.Add(1)
			}
		}(slot(w))
	}
	wg.Wait()
}
