// Package metrics provides convergence measurement utilities shared by
// the experiment drivers and the CLI tools: loss curves indexed by both
// epoch and simulated time, the paper's "time to come within p% of the
// optimal loss" statistic, plateau detection, and CSV export for
// external plotting.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"
)

// Point is one observation of a convergence curve.
type Point struct {
	// Epoch is the 1-based epoch number.
	Epoch int
	// Time is the cumulative simulated time at the end of the epoch
	// (zero for parallel-executor runs, which the simulator does not
	// model).
	Time time.Duration
	// Wall is the cumulative measured wall-clock time at the end of
	// the epoch — the parallel executor's time axis.
	Wall time.Duration
	// Loss is the objective value after the epoch.
	Loss float64
}

// Curve is a convergence trajectory: losses by epoch, in order.
type Curve struct {
	// Name labels the run (strategy, system, ...).
	Name string
	// Points holds the observations in epoch order.
	Points []Point
}

// Append adds one observation; epochs must arrive in increasing order.
func (c *Curve) Append(p Point) error {
	if n := len(c.Points); n > 0 && p.Epoch <= c.Points[n-1].Epoch {
		return fmt.Errorf("metrics: epoch %d after %d", p.Epoch, c.Points[n-1].Epoch)
	}
	c.Points = append(c.Points, p)
	return nil
}

// Best returns the minimum loss seen, or +Inf on an empty curve.
func (c *Curve) Best() float64 {
	best := math.Inf(1)
	for _, p := range c.Points {
		if p.Loss < best {
			best = p.Loss
		}
	}
	return best
}

// Final returns the last observation; ok is false on an empty curve.
func (c *Curve) Final() (Point, bool) {
	if len(c.Points) == 0 {
		return Point{}, false
	}
	return c.Points[len(c.Points)-1], true
}

// TimeTo returns the first time the curve reaches (or dips below) the
// target loss; ok is false if it never does.
func (c *Curve) TimeTo(target float64) (time.Duration, bool) {
	for _, p := range c.Points {
		if p.Loss <= target {
			return p.Time, true
		}
	}
	return 0, false
}

// EpochsTo returns the first epoch at or below the target loss.
func (c *Curve) EpochsTo(target float64) (int, bool) {
	for _, p := range c.Points {
		if p.Loss <= target {
			return p.Epoch, true
		}
	}
	return 0, false
}

// WithinPct converts the paper's "within p% of the optimal loss" into
// an absolute target: opt * (1 + pct/100).
func WithinPct(opt, pct float64) float64 { return opt * (1 + pct/100) }

// Plateaued reports whether the last window observations improved the
// loss by less than relTol relative to the window's start — the
// stopping heuristic dwrun uses.
func (c *Curve) Plateaued(window int, relTol float64) bool {
	n := len(c.Points)
	if n < window+1 {
		return false
	}
	start := c.Points[n-window-1].Loss
	end := c.Points[n-1].Loss
	if start == 0 {
		return end == 0
	}
	return (start-end)/math.Abs(start) < relTol
}

// Speedup returns how much faster this curve reaches the target than
// other does. The result is >1 when c is faster; ok is false when
// either curve never reaches the target.
func (c *Curve) Speedup(other *Curve, target float64) (float64, bool) {
	mine, ok1 := c.TimeTo(target)
	theirs, ok2 := other.TimeTo(target)
	if !ok1 || !ok2 || mine <= 0 {
		return 0, false
	}
	return theirs.Seconds() / mine.Seconds(), true
}

// WriteCSV emits "name,epoch,seconds,wall_seconds,loss" rows for every
// curve, with a header, suitable for external plotting. seconds is the
// simulated clock (zero for parallel-executor runs), wall_seconds the
// measured one (the parallel backend's time axis).
func WriteCSV(w io.Writer, curves ...*Curve) error {
	if _, err := fmt.Fprintln(w, "name,epoch,seconds,wall_seconds,loss"); err != nil {
		return err
	}
	for _, c := range curves {
		for _, p := range c.Points {
			if _, err := fmt.Fprintf(w, "%s,%d,%.9g,%.9g,%.9g\n",
				c.Name, p.Epoch, p.Time.Seconds(), p.Wall.Seconds(), p.Loss); err != nil {
				return err
			}
		}
	}
	return nil
}

// Summary aggregates a set of runs of the same experiment (different
// seeds) into median statistics.
type Summary struct {
	// Runs is the number of curves aggregated.
	Runs int
	// MedianBest is the median of per-run best losses.
	MedianBest float64
	// MedianEpochs is the median epoch count.
	MedianEpochs int
}

// Summarize computes a Summary over the curves.
func Summarize(curves []*Curve) Summary {
	if len(curves) == 0 {
		return Summary{}
	}
	bests := make([]float64, 0, len(curves))
	epochs := make([]int, 0, len(curves))
	for _, c := range curves {
		bests = append(bests, c.Best())
		if p, ok := c.Final(); ok {
			epochs = append(epochs, p.Epoch)
		}
	}
	sort.Float64s(bests)
	sort.Ints(epochs)
	s := Summary{Runs: len(curves), MedianBest: bests[len(bests)/2]}
	if len(epochs) > 0 {
		s.MedianEpochs = epochs[len(epochs)/2]
	}
	return s
}
