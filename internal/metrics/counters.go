package metrics

import (
	"sync/atomic"
	"time"
)

// counter is an atomic.Int64 padded out to a full 64-byte cache line.
// The serving counters below are bumped from every request and worker
// goroutine; packed tightly, eight of them share a cache line and each
// Add invalidates its neighbours' cached copies (false sharing). The
// padding keeps each counter on its own line — see
// BenchmarkCountersPadding for the measured difference.
type counter struct {
	atomic.Int64
	_ [56]byte
}

// ServeCounters are the serving subsystem's monotonically increasing
// operation counters. All methods are safe for concurrent use; the
// zero value is ready.
type ServeCounters struct {
	trainRequests   counter
	predictRequests counter
	predictions     counter
	jobsEnqueued    counter
	jobsDone        counter
	jobsFailed      counter
	jobsCancelled   counter
	planCacheHits   counter
	planCacheMisses counter
	httpErrors      counter
	gibbsSweeps     counter
	gibbsSamples    counter
	// The throughput rate is computed over parallel-executor epochs
	// only (simulated epochs' wall clock measures the cost simulator,
	// not sampling), so their samples and wall time accumulate apart.
	gibbsParSamples counter
	gibbsWallNanos  counter
	nnEpochs        counter
	nnExamples      counter
	ckptWrites      counter
	ckptBytes       counter
	ckptRestores    counter
	ckptErrors      counter
	appendRequests  counter
	rowsAppended    counter
	datasetVersions counter
	shadowEvals     counter
	modelsPromoted  counter
	modelsRolledBck counter
	onlineAdopts    counter
}

// TrainRequest records one accepted training request.
func (c *ServeCounters) TrainRequest() { c.trainRequests.Add(1) }

// PredictRequest records one prediction request serving n examples.
func (c *ServeCounters) PredictRequest(n int) {
	c.predictRequests.Add(1)
	c.predictions.Add(int64(n))
}

// JobEnqueued records one job entering the queue.
func (c *ServeCounters) JobEnqueued() { c.jobsEnqueued.Add(1) }

// JobDone records one job finishing successfully.
func (c *ServeCounters) JobDone() { c.jobsDone.Add(1) }

// JobFailed records one job ending in an error.
func (c *ServeCounters) JobFailed() { c.jobsFailed.Add(1) }

// JobCancelled records one job cancelled before completion.
func (c *ServeCounters) JobCancelled() { c.jobsCancelled.Add(1) }

// PlanCacheHit records one optimizer invocation skipped.
func (c *ServeCounters) PlanCacheHit() { c.planCacheHits.Add(1) }

// PlanCacheMiss records one cost-based optimizer run.
func (c *ServeCounters) PlanCacheMiss() { c.planCacheMisses.Add(1) }

// HTTPError records one request answered with a non-2xx status.
func (c *ServeCounters) HTTPError() { c.httpErrors.Add(1) }

// GibbsEpoch records one Gibbs epoch: sweeps chains each completed a
// full sweep drawing samples variable samples. wall is the epoch's
// measured sampling time for parallel-executor epochs and zero for
// simulated ones, whose wall clock is simulator overhead.
func (c *ServeCounters) GibbsEpoch(sweeps int, samples int64, wall time.Duration) {
	c.gibbsSweeps.Add(int64(sweeps))
	c.gibbsSamples.Add(samples)
	if wall > 0 {
		c.gibbsParSamples.Add(samples)
		c.gibbsWallNanos.Add(int64(wall))
	}
}

// NNEpoch records one network-training epoch over examples examples.
func (c *ServeCounters) NNEpoch(examples int64) {
	c.nnEpochs.Add(1)
	c.nnExamples.Add(examples)
}

// CheckpointWrite records one durable snapshot write of n bytes (a
// mid-training job checkpoint or a registry model persist).
func (c *ServeCounters) CheckpointWrite(n int) {
	c.ckptWrites.Add(1)
	c.ckptBytes.Add(int64(n))
}

// CheckpointRestore records one engine or registry state restored from
// a durable snapshot (warm start, job resume, lazy model load).
func (c *ServeCounters) CheckpointRestore() { c.ckptRestores.Add(1) }

// CheckpointError records one failed checkpoint write or restore.
func (c *ServeCounters) CheckpointError() { c.ckptErrors.Add(1) }

// AppendRequest records one accepted dataset-append request ingesting
// n rows, which published one new dataset version.
func (c *ServeCounters) AppendRequest(n int) {
	c.appendRequests.Add(1)
	c.rowsAppended.Add(int64(n))
	c.datasetVersions.Add(1)
}

// ShadowEval records one candidate model evaluated on a held-out tail.
func (c *ServeCounters) ShadowEval() { c.shadowEvals.Add(1) }

// ModelPromoted records one candidate that passed shadow evaluation
// and was swapped live.
func (c *ServeCounters) ModelPromoted() { c.modelsPromoted.Add(1) }

// ModelRolledBack records one candidate rejected by shadow evaluation:
// the previously promoted version stays live.
func (c *ServeCounters) ModelRolledBack() { c.modelsRolledBck.Add(1) }

// OnlineAdopt records one online job adopting a grown dataset view
// between epochs.
func (c *ServeCounters) OnlineAdopt() { c.onlineAdopts.Add(1) }

// ServeSnapshot is a point-in-time copy of the counters, shaped for
// JSON export by the stats endpoint.
type ServeSnapshot struct {
	TrainRequests   int64 `json:"train_requests"`
	PredictRequests int64 `json:"predict_requests"`
	Predictions     int64 `json:"predictions"`
	JobsEnqueued    int64 `json:"jobs_enqueued"`
	JobsDone        int64 `json:"jobs_done"`
	JobsFailed      int64 `json:"jobs_failed"`
	JobsCancelled   int64 `json:"jobs_cancelled"`
	PlanCacheHits   int64 `json:"plan_cache_hits"`
	PlanCacheMisses int64 `json:"plan_cache_misses"`
	HTTPErrors      int64 `json:"http_errors"`
	// GibbsSweeps counts full chain sweeps; GibbsSamples counts
	// variable samples; GibbsSamplesPerSec is the cumulative sampling
	// throughput of parallel-executor epochs over their measured wall
	// time (zero until a parallel gibbs job has run).
	GibbsSweeps        int64   `json:"gibbs_sweeps"`
	GibbsSamples       int64   `json:"gibbs_samples"`
	GibbsSamplesPerSec float64 `json:"gibbs_samples_per_sec"`
	// NNEpochs counts network-training epochs; NNExamples the examples
	// back-propagated.
	NNEpochs   int64 `json:"nn_epochs"`
	NNExamples int64 `json:"nn_examples"`
	// CheckpointWrites/Bytes count durable snapshot writes (job
	// checkpoints and persisted registry models); CheckpointRestores
	// counts states restored from them (warm starts, job resumes, lazy
	// model loads); CheckpointErrors counts failed writes or restores.
	CheckpointWrites   int64 `json:"checkpoint_writes"`
	CheckpointBytes    int64 `json:"checkpoint_bytes"`
	CheckpointRestores int64 `json:"checkpoint_restores"`
	CheckpointErrors   int64 `json:"checkpoint_errors"`
	// AppendRequests/RowsAppended/DatasetVersions count streaming
	// ingestion: accepted append chunks, rows ingested, and dataset
	// views published. ShadowEvals/ModelsPromoted/ModelsRolledBack
	// count the online canary gate; OnlineAdopts counts grown views
	// adopted by running online jobs.
	AppendRequests   int64 `json:"append_requests"`
	RowsAppended     int64 `json:"rows_appended"`
	DatasetVersions  int64 `json:"dataset_versions"`
	ShadowEvals      int64 `json:"shadow_evals"`
	ModelsPromoted   int64 `json:"models_promoted"`
	ModelsRolledBack int64 `json:"models_rolled_back"`
	OnlineAdopts     int64 `json:"online_adopts"`
}

// Snapshot returns a consistent-enough copy for reporting: each field
// is read atomically, the set is not a single linearization point.
func (c *ServeCounters) Snapshot() ServeSnapshot {
	s := ServeSnapshot{
		TrainRequests:      c.trainRequests.Load(),
		PredictRequests:    c.predictRequests.Load(),
		Predictions:        c.predictions.Load(),
		JobsEnqueued:       c.jobsEnqueued.Load(),
		JobsDone:           c.jobsDone.Load(),
		JobsFailed:         c.jobsFailed.Load(),
		JobsCancelled:      c.jobsCancelled.Load(),
		PlanCacheHits:      c.planCacheHits.Load(),
		PlanCacheMisses:    c.planCacheMisses.Load(),
		HTTPErrors:         c.httpErrors.Load(),
		GibbsSweeps:        c.gibbsSweeps.Load(),
		GibbsSamples:       c.gibbsSamples.Load(),
		NNEpochs:           c.nnEpochs.Load(),
		NNExamples:         c.nnExamples.Load(),
		CheckpointWrites:   c.ckptWrites.Load(),
		CheckpointBytes:    c.ckptBytes.Load(),
		CheckpointRestores: c.ckptRestores.Load(),
		CheckpointErrors:   c.ckptErrors.Load(),
		AppendRequests:     c.appendRequests.Load(),
		RowsAppended:       c.rowsAppended.Load(),
		DatasetVersions:    c.datasetVersions.Load(),
		ShadowEvals:        c.shadowEvals.Load(),
		ModelsPromoted:     c.modelsPromoted.Load(),
		ModelsRolledBack:   c.modelsRolledBck.Load(),
		OnlineAdopts:       c.onlineAdopts.Load(),
	}
	if nanos := c.gibbsWallNanos.Load(); nanos > 0 {
		s.GibbsSamplesPerSec = float64(c.gibbsParSamples.Load()) / (float64(nanos) / float64(time.Second))
	}
	return s
}
