package dimmwitted

// BenchmarkPredictServing compares the prediction-serving hot path
// before and after the sharded registry: "locked" is a faithful copy
// of the pre-PR single-RWMutex registry (including its per-requester
// lazy store loads), "sharded" is the current serve.Registry (lock-
// striped shards, atomic servingModel publication, single-flight
// loads). Three scenarios at 1/8/64 concurrent clients:
//
//   - hot: steady-state predictions against resident models — the
//     pure read path. On multi-core hardware the single RWMutex's
//     reader count becomes a coherence hot spot; on the single-core CI
//     box the paths mostly measure the shared scorer.
//   - publish: the same read load while a publisher continuously
//     republishes the hot models — training completing while traffic
//     is served. The single lock makes every publication a global
//     reader stall; the sharded path republishes by atomic swap.
//   - coldburst: a restarted daemon's first burst — every model is
//     store-resident but not yet in memory, and all clients hit them
//     at once. The pre-PR path decodes the snapshot once per waiting
//     request (the thundering herd the single-flight fix removes);
//     the sharded path decodes each model exactly once.
//
// Each configuration runs with GOMAXPROCS equal to its client count
// (restored afterwards) — the standard -cpu methodology for contention
// benchmarks: 64 concurrent clients of an HTTP server are 64 scheduled
// execution contexts, and pinning GOMAXPROCS to 1 on a single-core CI
// box would serialize the scheduler and mask exactly the contention
// under study (a goroutine is never descheduled mid-load, so the
// pre-PR thundering herd cannot form).
//
// Results land in BENCH_serve.json (committed seed; CI re-measures and
// uploads alongside the executor bench artifacts). The acceptance
// headline is the coldburst speedup at 64 clients.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"dimmwitted/internal/ckpt"
	"dimmwitted/internal/core"
	"dimmwitted/internal/model"
	"dimmwitted/internal/serve"
)

// preShardRegistry reproduces the pre-PR registry: one RWMutex over a
// map of entries; a miss falls back to the store with no single-flight
// (every concurrent requester loads and decodes on its own).
type preShardRegistry struct {
	mu     sync.RWMutex
	models map[string]*preShardEntry
	store  *ckpt.Store
}

type preShardEntry struct {
	scorer func(x []float64, examples []model.Example) ([]float64, error)
	snap   core.Snapshot
}

func newPreShard(store *ckpt.Store) *preShardRegistry {
	return &preShardRegistry{models: map[string]*preShardEntry{}, store: store}
}

func glmEntry(spec model.Spec, snap core.Snapshot) *preShardEntry {
	return &preShardEntry{
		scorer: func(x []float64, examples []model.Example) ([]float64, error) {
			return model.PredictBatch(spec, x, examples)
		},
		snap: snap,
	}
}

func (r *preShardRegistry) put(id string, spec model.Spec, snap core.Snapshot) {
	e := glmEntry(spec, snap)
	r.mu.Lock()
	r.models[id] = e
	r.mu.Unlock()
}

func (r *preShardRegistry) predict(id string, examples []model.Example) ([]float64, error) {
	r.mu.RLock()
	e, ok := r.models[id]
	store := r.store
	r.mu.RUnlock()
	if !ok {
		if store == nil {
			return nil, fmt.Errorf("unknown model %q", id)
		}
		snap, _, _, err := store.Load(id)
		if err != nil {
			return nil, err
		}
		spec, err := model.ByName(snap.Spec)
		if err != nil {
			return nil, err
		}
		e = glmEntry(spec, snap)
		r.mu.Lock()
		r.models[id] = e
		r.mu.Unlock()
	}
	return e.scorer(e.snap.X, examples)
}

// serveBenchEntry is one measured configuration.
type serveBenchEntry struct {
	Scenario  string  `json:"scenario"`
	Path      string  `json:"path"`
	Clients   int     `json:"clients"`
	ReqPerSec float64 `json:"req_per_sec"`
}

// serveBenchSpeedup is sharded-over-locked throughput per scenario.
type serveBenchSpeedup struct {
	Scenario string  `json:"scenario"`
	Clients  int     `json:"clients"`
	Speedup  float64 `json:"speedup"`
}

// serveBenchReport is the BENCH_serve.json layout.
type serveBenchReport struct {
	Description string `json:"description"`
	// NumCPU is the measuring machine's core count; every
	// configuration runs at GOMAXPROCS = clients (see the benchmark
	// comment).
	NumCPU   int                 `json:"num_cpu"`
	Entries  []serveBenchEntry   `json:"entries"`
	Speedups []serveBenchSpeedup `json:"speedups"`
	// Headline is the acceptance metric: coldburst at 64 clients.
	Headline serveBenchSpeedup `json:"headline"`
}

const (
	benchServeDim    = 256
	benchServeModels = 8
	// benchColdDim sizes the coldburst snapshots like production model
	// vectors (2 MB files, multi-millisecond decodes). Small snapshots
	// hide the pre-PR thundering herd on a single-core box: one
	// scheduler quantum decodes everything before the herd can form.
	benchColdDim = 1 << 18
)

// benchServeSnapshot builds the canonical benchmark model state.
func benchServeSnapshot(v float64) core.Snapshot {
	return benchSnapshotDim(v, benchServeDim)
}

func benchSnapshotDim(v float64, dim int) core.Snapshot {
	x := make([]float64, dim)
	for i := range x {
		x[i] = v * float64(i%7)
	}
	return core.Snapshot{Workload: core.WorkloadGLM, Spec: "svm", Dataset: "reuters", Epoch: 1, X: x}
}

func benchServeIDs() []string {
	ids := make([]string, benchServeModels)
	for i := range ids {
		ids[i] = fmt.Sprintf("job-%d", i+1)
	}
	return ids
}

// runServeClients drives perClient predictions from each client and
// returns total requests; predictErr failures abort the benchmark.
func runServeClients(b *testing.B, clients, perClient int, predict func(id string, ex []model.Example) ([]float64, error)) int {
	ids := benchServeIDs()
	examples := []model.Example{{Idx: []int32{3, 170}, Vals: []float64{1, 0.5}}}
	var wg sync.WaitGroup
	var failed sync.Once
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if _, err := predict(ids[(c+i)%len(ids)], examples); err != nil {
					failed.Do(func() { b.Error(err) })
					return
				}
			}
		}(c)
	}
	wg.Wait()
	return clients * perClient
}

func BenchmarkPredictServing(b *testing.B) {
	spec := model.NewSVM()
	ids := benchServeIDs()

	// A shared store for the coldburst scenario.
	storeDir := b.TempDir()
	store, err := ckpt.Open(storeDir, ckpt.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, id := range ids {
		if _, _, err := store.Save(id, benchSnapshotDim(1, benchColdDim), nil); err != nil {
			b.Fatal(err)
		}
	}

	results := map[string]float64{}
	key := func(scenario, path string, clients int) string {
		return fmt.Sprintf("%s/%s/c%d", scenario, path, clients)
	}
	record := func(scenario, path string, clients int, rps float64) {
		results[key(scenario, path, clients)] = rps
	}

	clientCounts := []int{1, 8, 64}

	// hot: resident models, pure reads.
	for _, clients := range clientCounts {
		for _, path := range []string{"locked", "sharded"} {
			path := path
			clients := clients
			b.Run(key("hot", path, clients), func(b *testing.B) {
				var predict func(string, []model.Example) ([]float64, error)
				if path == "locked" {
					reg := newPreShard(nil)
					for _, id := range ids {
						reg.put(id, spec, benchServeSnapshot(1))
					}
					predict = reg.predict
				} else {
					reg := serve.NewRegistry()
					for _, id := range ids {
						if err := reg.Put(id, spec, benchServeSnapshot(1)); err != nil {
							b.Fatal(err)
						}
					}
					predict = reg.Predict
				}
				prev := runtime.GOMAXPROCS(clients)
				defer runtime.GOMAXPROCS(prev)
				const perClient = 500
				total := 0
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					total += runServeClients(b, clients, perClient, predict)
				}
				b.StopTimer()
				rps := float64(total) / b.Elapsed().Seconds()
				b.ReportMetric(rps, "req/s")
				record("hot", path, clients, rps)
			})
		}
	}

	// publish: reads while a publisher republishes the hot models.
	versions := make([]core.Snapshot, 16)
	for i := range versions {
		versions[i] = benchServeSnapshot(float64(i + 1))
	}
	for _, clients := range clientCounts {
		for _, path := range []string{"locked", "sharded"} {
			path := path
			clients := clients
			b.Run(key("publish", path, clients), func(b *testing.B) {
				var predict func(string, []model.Example) ([]float64, error)
				var put func(id string, snap core.Snapshot)
				if path == "locked" {
					reg := newPreShard(nil)
					for _, id := range ids {
						reg.put(id, spec, benchServeSnapshot(1))
					}
					predict = reg.predict
					put = func(id string, snap core.Snapshot) { reg.put(id, spec, snap) }
				} else {
					reg := serve.NewRegistry()
					for _, id := range ids {
						if err := reg.Put(id, spec, benchServeSnapshot(1)); err != nil {
							b.Fatal(err)
						}
					}
					predict = reg.Predict
					put = func(id string, snap core.Snapshot) { _ = reg.Put(id, spec, snap) }
				}
				// The publisher is paced: a free-running put loop on a
				// single-core box measures allocator pressure, not the
				// registry; ~10k publications/s models training jobs
				// finishing while traffic is served.
				stop := make(chan struct{})
				var pubWg sync.WaitGroup
				pubWg.Add(1)
				go func() {
					defer pubWg.Done()
					for v := 0; ; v++ {
						select {
						case <-stop:
							return
						default:
						}
						put(ids[v%len(ids)], versions[v%len(versions)])
						time.Sleep(100 * time.Microsecond)
					}
				}()
				prev := runtime.GOMAXPROCS(clients)
				defer runtime.GOMAXPROCS(prev)
				const perClient = 500
				total := 0
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					total += runServeClients(b, clients, perClient, predict)
				}
				b.StopTimer()
				close(stop)
				pubWg.Wait()
				rps := float64(total) / b.Elapsed().Seconds()
				b.ReportMetric(rps, "req/s")
				record("publish", path, clients, rps)
			})
		}
	}

	// coldburst: every iteration is a fresh process image over the
	// durable store — all clients fault the models in at once.
	for _, clients := range clientCounts {
		for _, path := range []string{"locked", "sharded"} {
			path := path
			clients := clients
			b.Run(key("coldburst", path, clients), func(b *testing.B) {
				prev := runtime.GOMAXPROCS(clients)
				defer runtime.GOMAXPROCS(prev)
				const perClient = benchServeModels
				total := 0
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					var predict func(string, []model.Example) ([]float64, error)
					if path == "locked" {
						predict = newPreShard(store).predict
					} else {
						reg := serve.NewRegistry()
						reg.Persist(store, nil)
						predict = reg.Predict
					}
					total += runServeClients(b, clients, perClient, predict)
				}
				b.StopTimer()
				rps := float64(total) / b.Elapsed().Seconds()
				b.ReportMetric(rps, "req/s")
				record("coldburst", path, clients, rps)
			})
		}
	}

	// Assemble the report from whatever ran (all of it, absent -bench
	// filters that split the tree).
	rep := serveBenchReport{
		Description: "prediction-serving throughput: pre-PR single-RWMutex registry (locked) vs lock-striped atomic-publication registry with single-flight lazy loads (sharded); req/s at GOMAXPROCS=clients, higher is better",
		NumCPU:      runtime.NumCPU(),
	}
	for _, scenario := range []string{"hot", "publish", "coldburst"} {
		for _, clients := range clientCounts {
			locked, okL := results[key(scenario, "locked", clients)]
			sharded, okS := results[key(scenario, "sharded", clients)]
			if okL {
				rep.Entries = append(rep.Entries, serveBenchEntry{scenario, "locked", clients, locked})
			}
			if okS {
				rep.Entries = append(rep.Entries, serveBenchEntry{scenario, "sharded", clients, sharded})
			}
			if okL && okS && locked > 0 {
				sp := serveBenchSpeedup{Scenario: scenario, Clients: clients, Speedup: sharded / locked}
				rep.Speedups = append(rep.Speedups, sp)
				if scenario == "coldburst" && clients == 64 {
					rep.Headline = sp
				}
			}
		}
	}
	if len(rep.Entries) == 0 {
		return
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_serve.json", buf, 0o644); err != nil {
		b.Fatal(err)
	}
}
