// Package dimmwitted is a Go reproduction of the DimmWitted main-
// memory statistical analytics engine (Zhang & Ré, VLDB 2014). It
// runs first-order methods — SGD and coordinate descent over SVM,
// logistic regression, least squares, LP and QP models, plus Gibbs
// sampling and deep neural networks — while exploring the paper's
// three tradeoffs on a simulated NUMA machine:
//
//   - access method: row-wise vs column-wise / column-to-row,
//   - model replication: PerCore, PerNode, PerMachine,
//   - data replication: Sharding, FullReplication, Importance sampling.
//
// Execution is pluggable (Plan.Executor): the simulated backend runs
// the deterministic interleaver over the NUMA cost simulator, while
// ExecParallel runs the same plan with real goroutine Hogwild workers
// measured in wall-clock time.
//
// Quick start:
//
//	ds := dimmwitted.Reuters()                   // synthetic RCV1-style corpus
//	spec := dimmwitted.SVM()                     // hinge-loss model spec
//	plan, _ := dimmwitted.Choose(spec, ds, dimmwitted.Local2)
//	eng, _ := dimmwitted.New(spec, ds, plan)
//	res := eng.RunToLoss(0.1, 50)
//	fmt.Println(res.Converged, res.Epochs, res.Time, res.FinalLoss)
//
// Statistical efficiency (epochs to converge) is genuine: the
// algorithms really run on the data. Hardware efficiency (time per
// epoch, PMU-style counters) is accounted by a deterministic NUMA cost
// simulator parameterised with the paper's five machine topologies —
// see DESIGN.md for why and how the substitution preserves the
// tradeoffs under study.
package dimmwitted

import (
	"dimmwitted/internal/core"
	"dimmwitted/internal/data"
	"dimmwitted/internal/factor"
	"dimmwitted/internal/metrics"
	"dimmwitted/internal/model"
	"dimmwitted/internal/nn"
	"dimmwitted/internal/numa"
	"dimmwitted/internal/serve"
)

// Engine executes one analytics task under an execution plan.
type Engine = core.Engine

// Plan is an execution plan: the point in the tradeoff space plus
// tuning knobs.
type Plan = core.Plan

// RunResult summarises a convergence run.
type RunResult = core.RunResult

// EpochResult reports one epoch.
type EpochResult = core.EpochResult

// CostEstimate is the optimizer's per-access cost prediction.
type CostEstimate = core.CostEstimate

// Dataset is an immutable data matrix plus labels.
type Dataset = data.Dataset

// Spec is a model specification (f_row / f_col / f_ctr plus loss).
type Spec = model.Spec

// Replica is one model replica (model vector plus auxiliary state).
type Replica = model.Replica

// Topology describes a NUMA machine shape.
type Topology = numa.Topology

// Counters are the PMU-style counters of the simulated machine.
type Counters = numa.Counters

// Access methods (Section 2.1 of the paper).
const (
	RowWise  = model.RowWise
	ColWise  = model.ColWise
	ColToRow = model.ColToRow
)

// Model replication granularities (Section 3.3).
const (
	PerCore    = core.PerCore
	PerNode    = core.PerNode
	PerMachine = core.PerMachine
)

// Data replication strategies (Section 3.4, Appendix C.4).
const (
	Sharding        = core.Sharding
	FullReplication = core.FullReplication
	Importance      = core.Importance
)

// Data placement protocols (Appendix A).
const (
	PlacementNUMA = core.PlacementNUMA
	PlacementOS   = core.PlacementOS
)

// ExecutorKind selects the execution backend for a plan.
type ExecutorKind = core.ExecutorKind

// Execution backends: the deterministic simulated-NUMA interleaver
// (the figure-reproduction default) and real goroutine Hogwild workers
// measured in wall-clock time.
const (
	ExecSimulated = core.ExecSimulated
	ExecParallel  = core.ExecParallel
)

// ExecutorByName maps executor names ("simulated", "parallel"; ""
// means simulated).
func ExecutorByName(name string) (ExecutorKind, error) { return core.ExecutorByName(name) }

// Workload is one analytics task the engine can execute: partitionable
// units, per-replica state, an update step, a combine and a quality
// metric. GLM training, Gibbs sampling and NN training all run through
// it.
type Workload = core.Workload

// WorkloadKind identifies a workload family for plans, snapshots and
// the serving API.
type WorkloadKind = core.WorkloadKind

// Workload families.
const (
	WorkloadGLM   = core.WorkloadGLM
	WorkloadGibbs = core.WorkloadGibbs
	WorkloadNN    = core.WorkloadNN
)

// WorkloadByName maps workload names ("glm", "gibbs", "nn"; "" means
// glm).
func WorkloadByName(name string) (WorkloadKind, error) { return core.WorkloadByName(name) }

// NewWorkloadEngine builds an engine for any workload (GLMWorkload,
// GibbsWorkload, NNWorkload). A workload instance binds to one engine.
func NewWorkloadEngine(wl Workload, plan Plan) (*Engine, error) { return core.NewWorkload(wl, plan) }

// GLMWorkload wraps a model spec and dataset as an engine workload —
// what New uses internally.
func GLMWorkload(spec Spec, ds *Dataset) Workload { return core.NewGLM(spec, ds) }

// FactorGraph is a factor graph over boolean variables, the Gibbs
// workload's data.
type FactorGraph = factor.Graph

// GibbsWorkload wraps a factor graph as an engine workload: chains map
// onto the plan's model replicas, variables onto work units.
func GibbsWorkload(g *FactorGraph) *factor.Workload { return factor.NewWorkload(g) }

// GraphByName returns a registered factor graph ("paleo", "cycle5",
// ...), the names the serving API's gibbs jobs accept.
func GraphByName(name string) (*FactorGraph, error) { return factor.GraphByName(name) }

// GraphNames lists the registered factor graph names.
func GraphNames() []string { return factor.GraphNames() }

// NNDataset is a labelled image dataset for the NN workload.
type NNDataset = nn.Dataset

// NNWorkload wraps an image dataset as an engine workload: network
// replicas map onto the plan's model replicas, examples onto work
// units. Sizes nil means the scaled LeCun architecture.
func NNWorkload(ds *NNDataset, sizes []int, seed int64) (*nn.Workload, error) {
	return nn.NewWorkload(ds, nn.WorkloadConfig{Sizes: sizes, Seed: seed})
}

// NNDatasetByName returns a registered image dataset and its network
// architecture ("mnist", ...), the names the serving API's nn jobs
// accept.
func NNDatasetByName(name string) (*NNDataset, []int, error) { return nn.DatasetByName(name) }

// NNDatasetNames lists the registered NN dataset names.
func NNDatasetNames() []string { return nn.DatasetNames() }

// ChooseWorkload runs a workload's cost-based optimizer for a topology
// and execution backend.
func ChooseWorkload(wl Workload, top Topology, exec ExecutorKind) (Plan, error) {
	return core.ChooseWorkload(wl, top, exec)
}

// The paper's five machine configurations (Figure 3).
var (
	Local2 = numa.Local2
	Local4 = numa.Local4
	Local8 = numa.Local8
	EC21   = numa.EC21
	EC22   = numa.EC22
)

// New builds an engine for a spec, dataset and plan.
func New(spec Spec, ds *Dataset, plan Plan) (*Engine, error) { return core.New(spec, ds, plan) }

// Choose runs the cost-based optimizer and returns a complete plan
// for the simulated backend.
func Choose(spec Spec, ds *Dataset, top Topology) (Plan, error) { return core.Choose(spec, ds, top) }

// ChooseExecutor runs the cost-based optimizer for a specific
// execution backend; the parallel backend restricts the priced access
// methods to row-wise.
func ChooseExecutor(spec Spec, ds *Dataset, top Topology, exec ExecutorKind) (Plan, error) {
	return core.ChooseExecutor(spec, ds, top, exec)
}

// Explain returns the optimizer's cost estimates per access method.
func Explain(spec Spec, ds *Dataset, top Topology) []CostEstimate {
	return core.Explain(spec, ds, top)
}

// MachineByName looks up one of the paper's topologies ("local2", ...).
func MachineByName(name string) (Topology, error) { return numa.ByName(name) }

// Model specifications (Section 4.1's five models plus parallel sum).
func SVM() Spec         { return model.NewSVM() }
func LR() Spec          { return model.NewLR() }
func LS() Spec          { return model.NewLS() }
func LP() Spec          { return model.NewLP() }
func QP() Spec          { return model.NewQP() }
func ParallelSum() Spec { return model.NewParallelSum() }

// ModelByName constructs a spec from its short name ("svm", "lr", ...).
func ModelByName(name string) (Spec, error) { return model.ByName(name) }

// Synthetic analogs of the paper's evaluation datasets (Figure 10).
func RCV1() *Dataset            { return data.RCV1() }
func Reuters() *Dataset         { return data.Reuters() }
func Music() *Dataset           { return data.Music() }
func MusicRegression() *Dataset { return data.MusicRegression() }
func Forest() *Dataset          { return data.Forest() }
func AmazonLP() *Dataset        { return data.AmazonLP() }
func GoogleLP() *Dataset        { return data.GoogleLP() }
func AmazonQP() *Dataset        { return data.AmazonQP() }
func GoogleQP() *Dataset        { return data.GoogleQP() }
func ClueWeb(scale float64) *Dataset {
	return data.ClueWeb(scale)
}

// SubsampleSparsity thins each row's nonzeros to the given fraction,
// the paper's update-density sweep.
func SubsampleSparsity(d *Dataset, keep float64, seed int64) *Dataset {
	return data.SubsampleSparsity(d, keep, seed)
}

// SubsampleRows keeps a fraction of rows, the scalability sweep.
func SubsampleRows(d *Dataset, frac float64, seed int64) *Dataset {
	return data.SubsampleRows(d, frac, seed)
}

// DatasetByName returns the shared instance of a registered dataset
// ("rcv1", "reuters", ...), the names the serving API accepts.
func DatasetByName(name string) (*Dataset, error) { return data.ByName(name) }

// DatasetNames lists the registered dataset names.
func DatasetNames() []string { return data.Names() }

// ---- Serving layer (internal/serve) ----

// Snapshot is a frozen copy of an engine's trained model, the unit the
// model registry stores and serves predictions from. It is also a
// resume point: Engine.Restore continues training from it exactly.
type Snapshot = core.Snapshot

// EncodeSnapshot serializes a snapshot in the versioned binary codec
// (magic, version, CRC-32 trailer) the durable checkpoint store uses.
func EncodeSnapshot(s Snapshot) []byte { return core.EncodeSnapshot(s) }

// DecodeSnapshot parses a serialized snapshot, verifying magic,
// version and CRC.
func DecodeSnapshot(data []byte) (Snapshot, error) { return core.DecodeSnapshot(data) }

// Example is one prediction input: a sparse feature vector.
type Example = model.Example

// Predict scores a batch of examples against a model vector, mapping
// raw scores through the spec's prediction rule.
func Predict(spec Spec, x []float64, examples []Example) ([]float64, error) {
	return model.PredictBatch(spec, x, examples)
}

// Server is the HTTP serving front end: POST /v1/train, GET
// /v1/jobs/{id}, POST /v1/predict, GET /v1/stats (see internal/serve).
// Prediction serving runs on a sharded, lock-free-read model registry;
// ServeOptions.BatchWindow additionally coalesces concurrent
// /v1/predict requests into micro-batches with admission control.
type Server = serve.Server

// ServeOptions configures a server or scheduler (worker slots, durable
// stores, predict micro-batching).
type ServeOptions = serve.Options

// Registry is the model registry servers predict from: lock-striped
// shards of immutable, pre-resolved serving models published by atomic
// pointer swap, with single-flight lazy loads from the durable store.
type Registry = serve.Registry

// NewRegistry returns an empty, memory-only model registry.
func NewRegistry() *Registry { return serve.NewRegistry() }

// ModelInfo is one row of the registry's model listing.
type ModelInfo = serve.ModelInfo

// BatchStats summarises the predict micro-batcher in /v1/stats.
type BatchStats = serve.BatchStats

// LatencySnapshot is a per-route latency percentile summary
// (p50/p95/p99) as reported under "latency" in /v1/stats.
type LatencySnapshot = metrics.HistogramSnapshot

// ErrUnknownModel reports a registry miss (HTTP 404 on /v1/predict);
// match it with errors.Is.
var ErrUnknownModel = serve.ErrUnknownModel

// ErrPredictOverloaded reports predict admission control turning a
// request away (HTTP 429 + Retry-After); match it with errors.Is.
var ErrPredictOverloaded = serve.ErrOverloaded

// Scheduler runs training jobs asynchronously on a worker pool sized
// from the NUMA topology.
type Scheduler = serve.Scheduler

// TrainRequest describes one training job for the scheduler.
type TrainRequest = serve.TrainRequest

// JobStatus is a point-in-time copy of a training job's state.
type JobStatus = serve.JobStatus

// NewServer builds an HTTP serving front end with its own scheduler.
func NewServer(opts ServeOptions) *Server { return serve.NewServer(opts) }

// NewScheduler builds a standalone training-job scheduler.
func NewScheduler(opts ServeOptions) *Scheduler { return serve.NewScheduler(opts) }
