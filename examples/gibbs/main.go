// Gibbs sampling on factor graphs: the paper's first extension
// (Section 5.1), run through the workload engine. Validates the
// sampler against exact inference on a small graph, then reproduces
// the PerNode-chains-vs-single-chain throughput comparison on the
// Paleo-scale graph — and shows the same plan running with real
// concurrent goroutine samplers (Hogwild!-Gibbs).
package main

import (
	"fmt"
	"log"

	"dimmwitted/internal/core"
	"dimmwitted/internal/factor"
)

func main() {
	// A small loopy graph where exact marginals are tractable.
	small := factor.Cycle5()
	exact, err := factor.ExactMarginals(small)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := core.NewWorkload(factor.NewWorkload(small),
		core.Plan{ModelRep: core.PerNode, DataRep: core.FullReplication, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	eng.RunEpochs(3000)
	got := eng.Model()
	fmt.Println("variable  exact P(x=1)  Gibbs estimate")
	for v := range exact {
		fmt.Printf("%-9d %-13.3f %.3f\n", v, exact[v], got[v])
	}

	// Throughput on the Paleo-scale graph: one Hogwild!-style chain
	// shared by every core vs an independent chain per NUMA node.
	g := factor.Paleo()
	fmt.Printf("\npaleo-scale graph: %d variables, %d factors, %d incidences\n",
		g.NumVars, len(g.Factors), g.NNZ())
	simThroughput := func(plan core.Plan) float64 {
		eng, err := core.NewWorkload(factor.NewWorkload(g), plan)
		if err != nil {
			log.Fatal(err)
		}
		steps := 0
		for _, er := range eng.RunEpochs(3) {
			steps += er.Steps
		}
		return float64(steps) / eng.SimTime().Seconds()
	}
	// The classic baseline is NUMA-oblivious: OS-interleaved storage.
	single := simThroughput(core.Plan{ModelRep: core.PerMachine, DataRep: core.Sharding, Placement: core.PlacementOS, Seed: 1})
	perNode := simThroughput(core.Plan{ModelRep: core.PerNode, DataRep: core.FullReplication, Seed: 1})
	fmt.Printf("single chain (PerMachine): %.2fM samples/s\n", single/1e6)
	fmt.Printf("chain per node (PerNode):  %.2fM samples/s\n", perNode/1e6)
	fmt.Printf("speedup: %.1fx (paper Figure 17b: ~4x)\n", perNode/single)

	// The same chain-per-node plan on the parallel executor: real
	// goroutines sampling concurrently, measured in wall-clock time.
	par, err := core.NewWorkload(factor.NewWorkload(g),
		core.Plan{ModelRep: core.PerNode, DataRep: core.FullReplication, Executor: core.ExecParallel, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	steps := 0
	for _, er := range par.RunEpochs(3) {
		steps += er.Steps
	}
	fmt.Printf("\nparallel executor (goroutine Hogwild!-Gibbs): %d samples in %v wall clock\n",
		steps, par.WallTime())
}
