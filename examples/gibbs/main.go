// Gibbs sampling on factor graphs: the paper's first extension
// (Section 5.1). Validates the sampler against exact inference on a
// small graph, then reproduces the PerNode-chains-vs-single-chain
// throughput comparison on the Paleo-scale graph.
package main

import (
	"fmt"
	"log"

	"dimmwitted/internal/factor"
	"dimmwitted/internal/numa"
)

func main() {
	// A small loopy graph where exact marginals are tractable.
	small, err := factor.NewGraph(5, []factor.Factor{
		{Vars: []int32{0, 1}, Weight: 1.2},
		{Vars: []int32{1, 2}, Weight: -0.8},
		{Vars: []int32{2, 3}, Weight: 0.5},
		{Vars: []int32{3, 4}, Weight: 1.5},
		{Vars: []int32{0, 4}, Weight: 0.3},
	})
	if err != nil {
		log.Fatal(err)
	}
	exact, err := factor.ExactMarginals(small)
	if err != nil {
		log.Fatal(err)
	}
	s := factor.NewSampler(small, numa.Local2, factor.ChainPerNode, 7)
	s.RunSweeps(3000)
	got := s.Marginals()
	fmt.Println("variable  exact P(x=1)  Gibbs estimate")
	for v := range exact {
		fmt.Printf("%-9d %-13.3f %.3f\n", v, exact[v], got[v])
	}

	// Throughput on the Paleo-scale graph: one Hogwild!-style chain
	// shared by every core vs an independent chain per NUMA node.
	g := factor.Paleo()
	fmt.Printf("\npaleo-scale graph: %d variables, %d factors, %d incidences\n",
		g.NumVars, len(g.Factors), g.NNZ())
	single := factor.NewSampler(g, numa.Local2, factor.SingleChain, 1).RunSweeps(3)
	perNode := factor.NewSampler(g, numa.Local2, factor.ChainPerNode, 1).RunSweeps(3)
	fmt.Printf("single chain (PerMachine): %.2fM samples/s\n", single.Throughput/1e6)
	fmt.Printf("chain per node (PerNode):  %.2fM samples/s\n", perNode.Throughput/1e6)
	fmt.Printf("speedup: %.1fx (paper Figure 17b: ~4x)\n", perNode.Throughput/single.Throughput)
}
