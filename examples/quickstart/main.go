// Quickstart: train an SVM on a synthetic text corpus with the
// optimizer-chosen plan and watch it converge.
package main

import (
	"fmt"
	"log"

	"dimmwitted"
)

func main() {
	ds := dimmwitted.Reuters() // sparse text classification (RCV1 family)
	spec := dimmwitted.SVM()

	// Let the cost-based optimizer pick the access method, model
	// replication and data replication for a 2-socket machine.
	plan, err := dimmwitted.Choose(spec, ds, dimmwitted.Local2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %s (%d examples, %d features, %d nonzeros)\n",
		ds.Name, ds.Rows(), ds.Cols(), ds.NNZ())
	fmt.Printf("plan:    %s\n\n", plan)

	eng, err := dimmwitted.New(spec, ds, plan)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("epoch  loss      simulated time")
	for i := 0; i < 10; i++ {
		er := eng.RunEpoch()
		fmt.Printf("%-6d %-9.4f %v\n", er.Epoch, er.Loss, er.CumTime)
	}

	fmt.Printf("\ncounters: %v\n", eng.Counters())
}
