// Network analysis: the paper's LP/QP application on social-network
// graphs. Solves the vertex-cover LP relaxation and a graph-smoothing
// QP on the Amazon-style co-purchase graph, demonstrating that
// column-wise (coordinate) access with a single PerMachine replica is
// the winning point — the exact opposite of the text-classification
// plan.
package main

import (
	"fmt"
	"log"

	"dimmwitted"
)

func main() {
	lp := dimmwitted.AmazonLP()
	fmt.Printf("graph LP: %d edges (constraints), %d vertices\n", lp.Rows(), lp.Cols())

	spec := dimmwitted.LP()
	plan, err := dimmwitted.Choose(spec, lp, dimmwitted.Local2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimizer plan: %s\n\n", plan)

	// Column-wise coordinate descent vs row-wise SGD, both run for the
	// same number of epochs.
	colEng, err := dimmwitted.New(spec, lp, plan)
	if err != nil {
		log.Fatal(err)
	}
	rowPlan := plan
	rowPlan.Access = dimmwitted.RowWise
	rowPlan.ModelRep = dimmwitted.PerNode
	rowPlan.Step, rowPlan.StepDecay = 0, 0 // re-derive SGD defaults
	rowPlan = rowPlan.Normalize(spec)
	rowEng, err := dimmwitted.New(spec, lp, rowPlan)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("epoch  column-wise loss  row-wise loss")
	for i := 0; i < 12; i++ {
		c := colEng.RunEpoch()
		r := rowEng.RunEpoch()
		fmt.Printf("%-6d %-17.5f %.5f\n", c.Epoch, c.Loss, r.Loss)
	}

	// Inspect the LP solution: a fractional vertex cover.
	x := colEng.Model()
	var size, worst float64
	for _, v := range x {
		size += v
	}
	for i := 0; i < lp.Rows(); i++ {
		// every row has two unit entries (the edge's endpoints)
		idx, _ := lp.A.Row(i)
		if viol := 1 - x[idx[0]] - x[idx[1]]; viol > worst {
			worst = viol
		}
	}
	fmt.Printf("\nfractional cover size: %.1f of %d vertices; worst constraint violation %.4f\n",
		size, lp.Cols(), worst)

	// QP: graph smoothing with anchors.
	qp := dimmwitted.AmazonQP()
	qpSpec := dimmwitted.QP()
	qpPlan, err := dimmwitted.Choose(qpSpec, qp, dimmwitted.Local2)
	if err != nil {
		log.Fatal(err)
	}
	qpEng, err := dimmwitted.New(qpSpec, qp, qpPlan)
	if err != nil {
		log.Fatal(err)
	}
	res := qpEng.RunToLoss(0, 15) // run 15 epochs, report the trace
	fmt.Printf("\nQP (%s): loss after %d epochs = %.5f (simulated %v)\n",
		qpPlan, res.Epochs, res.FinalLoss, res.Time)
}
