// Deep neural network training: the paper's second extension
// (Section 5.2). Trains the scaled seven-layer network on a synthetic
// MNIST-like dataset and compares LeCun's classical layout (one
// machine-shared network, sharded data) against DimmWitted's (one
// network per NUMA node, fully replicated data).
package main

import (
	"fmt"
	"log"

	"dimmwitted/internal/nn"
)

func main() {
	ds := nn.SyntheticMNIST(600, 256, 10, 0.08, 1)
	sizes := nn.LeCunSizes()
	fmt.Printf("dataset: %d examples, %d classes; network %v (%d parameters)\n\n",
		len(ds.Images), ds.Classes, sizes, nn.NewNetwork(sizes, 1).NumParams())

	dw, err := nn.NewTrainer(ds, nn.TrainerConfig{Strategy: nn.DimmWitted(), Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	classic, err := nn.NewTrainer(ds, nn.TrainerConfig{Strategy: nn.Classic(), Seed: 2})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("training with %s vs %s\n\n", nn.DimmWitted(), nn.Classic())
	fmt.Println("epoch  DW loss   DW acc   classic loss  classic acc")
	for i := 0; i < 6; i++ {
		d := dw.RunEpoch()
		c := classic.RunEpoch()
		fmt.Printf("%-6d %-9.4f %-8.3f %-13.4f %.3f\n",
			d.Epoch, d.Loss, dw.Net.Accuracy(ds), c.Loss, classic.Net.Accuracy(ds))
	}

	dLast := dw.RunEpoch()
	cLast := classic.RunEpoch()
	fmt.Printf("\nneuron throughput: DW %.2fM/s vs classic %.2fM/s — %.1fx (paper Figure 17b: >10x)\n",
		dLast.NeuronThroughput/1e6, cLast.NeuronThroughput/1e6,
		dLast.NeuronThroughput/cLast.NeuronThroughput)
}
