// Deep neural network training: the paper's second extension
// (Section 5.2), run through the workload engine. Trains the scaled
// seven-layer network on a synthetic MNIST-like dataset and compares
// LeCun's classical layout (one machine-shared network, sharded data)
// against DimmWitted's (one network per NUMA node, fully replicated
// data) — both as ordinary engine plans.
package main

import (
	"fmt"
	"log"

	"dimmwitted/internal/core"
	"dimmwitted/internal/nn"
)

func main() {
	ds := nn.SyntheticMNIST(600, 256, 10, 0.08, 1)
	sizes := nn.LeCunSizes()
	fmt.Printf("dataset: %d examples, %d classes; network %v (%d parameters)\n\n",
		len(ds.Images), ds.Classes, sizes, nn.NewNetwork(sizes, 1).NumParams())

	build := func(plan core.Plan) (*nn.Workload, *core.Engine) {
		wl, err := nn.NewWorkload(ds, nn.WorkloadConfig{Seed: 2})
		if err != nil {
			log.Fatal(err)
		}
		eng, err := core.NewWorkload(wl, plan)
		if err != nil {
			log.Fatal(err)
		}
		return wl, eng
	}
	dwWl, dw := build(core.Plan{ModelRep: core.PerNode, DataRep: core.FullReplication, Seed: 2})
	_, classic := build(core.Plan{ModelRep: core.PerMachine, DataRep: core.Sharding, Seed: 2})

	fmt.Println("training with PerNode/FullReplication vs PerMachine/Sharding")
	fmt.Println("epoch  DW loss   DW acc   classic loss  classic acc")
	for i := 0; i < 6; i++ {
		d := dw.RunEpoch()
		c := classic.RunEpoch()
		fmt.Printf("%-6d %-9.4f %-8.3f %-13.4f %.3f\n",
			d.Epoch, d.Loss, dw.Metrics()["accuracy"], c.Loss, classic.Metrics()["accuracy"])
	}

	dLast := dw.RunEpoch()
	cLast := classic.RunEpoch()
	neurons := float64(dwWl.NumNeurons())
	dTP := float64(dLast.Steps) * neurons / dLast.SimTime.Seconds()
	cTP := float64(cLast.Steps) * neurons / cLast.SimTime.Seconds()
	fmt.Printf("\nneuron throughput: DW %.2fM/s vs classic %.2fM/s — %.1fx (paper Figure 17b: >10x)\n",
		dTP/1e6, cTP/1e6, dTP/cTP)
}
