// First-order method comparison: the paper's Section 2.1 lists SGD,
// gradient descent and higher-order methods (l-BFGS) as the row-wise
// family. This example races them — plus mini-batch SGD, MLlib's
// execution model — on the least-squares Music workload and prints the
// epochs each needs to reach the same loss.
package main

import (
	"fmt"
	"log"
	"os"

	"dimmwitted"
	"dimmwitted/internal/metrics"
	"dimmwitted/internal/opt"
)

func main() {
	ds := dimmwitted.MusicRegression()
	spec := dimmwitted.LS()
	fmt.Printf("task: least squares on %s (%d x %d, dense)\n\n", ds.Name, ds.Rows(), ds.Cols())

	const epochs = 25
	gd, err := (&opt.GD{Step: 0.5}).Run(spec, ds, epochs)
	if err != nil {
		log.Fatal(err)
	}
	lbfgs, err := (&opt.LBFGS{M: 5}).Run(spec, ds, epochs)
	if err != nil {
		log.Fatal(err)
	}
	mb, err := (&opt.MiniBatch{Fraction: 0.1, Step: 0.5, Seed: 1}).Run(spec, ds, epochs)
	if err != nil {
		log.Fatal(err)
	}

	// SGD through the engine (single worker isolates the method).
	eng, err := dimmwitted.New(spec, ds, dimmwitted.Plan{Workers: 1})
	if err != nil {
		log.Fatal(err)
	}
	sgd := &metrics.Curve{Name: "sgd"}
	for i := 0; i < epochs; i++ {
		er := eng.RunEpoch()
		if err := sgd.Append(metrics.Point{Epoch: er.Epoch, Time: er.CumTime, Loss: er.Loss}); err != nil {
			log.Fatal(err)
		}
	}

	curves := []*metrics.Curve{sgd, gd.Curve, lbfgs.Curve, mb.Curve}
	fmt.Println("epoch   sgd        gd         l-bfgs     minibatch(10%)")
	for e := 0; e < epochs; e += 4 {
		fmt.Printf("%-7d", e+1)
		for _, c := range curves {
			fmt.Printf(" %-10.4g", c.Points[e].Loss)
		}
		fmt.Println()
	}

	target := sgd.Best() * 1.5
	fmt.Printf("\nepochs to reach loss %.4g:\n", target)
	for _, c := range curves {
		if e, ok := c.EpochsTo(target); ok {
			fmt.Printf("  %-16s %d\n", c.Name, e)
		} else {
			fmt.Printf("  %-16s > %d\n", c.Name, epochs)
		}
	}

	fmt.Println("\nfull curves (CSV):")
	if err := metrics.WriteCSV(os.Stdout, curves...); err != nil {
		log.Fatal(err)
	}
}
