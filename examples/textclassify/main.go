// Text classification: the paper's motivating workload. Trains SVM
// and logistic regression on the RCV1-style corpus and demonstrates
// the two tradeoffs that matter for sparse text: row-wise access beats
// column-to-row, and PerNode model replication beats both the
// shared-nothing (PerCore) and Hogwild! (PerMachine) points.
package main

import (
	"fmt"
	"log"

	"dimmwitted"
)

func main() {
	ds := dimmwitted.RCV1()
	fmt.Printf("corpus: %s — %d documents, %d terms, %.1f terms/doc\n\n",
		ds.Name, ds.Rows(), ds.Cols(), ds.AvgRowNNZ())

	for _, spec := range []dimmwitted.Spec{dimmwitted.SVM(), dimmwitted.LR()} {
		fmt.Printf("--- %s ---\n", spec.Name())

		// What does the optimizer say?
		for _, est := range dimmwitted.Explain(spec, ds, dimmwitted.Local2) {
			fmt.Printf("cost[%s] = %.3g reads + alpha x %.3g writes = %.3g\n",
				est.Access, est.Reads, est.Writes, est.Cost)
		}
		plan, err := dimmwitted.Choose(spec, ds, dimmwitted.Local2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("chosen plan: %s\n\n", plan)

		// Compare the three model-replication strategies at the chosen
		// access method: epochs AND simulated time to the same loss.
		target := 0.12
		fmt.Printf("%-12s %-8s %-14s %s\n", "replication", "epochs", "time-to-loss", "converged")
		for _, rep := range []dimmwitted.Plan{
			{ModelRep: dimmwitted.PerCore},
			{ModelRep: dimmwitted.PerNode},
			{ModelRep: dimmwitted.PerMachine},
		} {
			p := plan
			p.ModelRep = rep.ModelRep
			eng, err := dimmwitted.New(spec, ds, p)
			if err != nil {
				log.Fatal(err)
			}
			res := eng.RunToLoss(target, 120)
			fmt.Printf("%-12v %-8d %-14v %v\n", p.ModelRep, res.Epochs, res.Time, res.Converged)
		}
		fmt.Println()
	}
}
