package dimmwitted

// One benchmark per table/figure of the paper's evaluation, each
// delegating to the shared driver in internal/experiments (quick
// grids) and reporting the headline shape statistic via
// b.ReportMetric, plus ablation benches for the design knobs called
// out in DESIGN.md. Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// or print the full paper-style tables with cmd/dwbench.

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"dimmwitted/internal/core"
	"dimmwitted/internal/data"
	"dimmwitted/internal/experiments"
	"dimmwitted/internal/factor"
	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
	"dimmwitted/internal/opt"
)

// benchDriver runs one experiment driver per iteration and reports the
// selected metrics.
func benchDriver(b *testing.B, name string, metrics ...string) {
	drv, ok := experiments.Lookup(name)
	if !ok {
		b.Fatalf("no driver %q", name)
	}
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res = drv(true)
	}
	for _, m := range metrics {
		if v, ok := res.Metrics[m]; ok {
			b.ReportMetric(v, strings.ReplaceAll(m, " ", "_"))
		}
	}
}

func BenchmarkFig6CostModel(b *testing.B) {
	benchDriver(b, "fig6", "sumN/rcv1", "sumN2/rcv1")
}

// BenchmarkFig6Executors measures real wall-clock epoch times of the
// simulated and parallel executors on identical plans and writes the
// measurements to BENCH_parallel.json — the CI bench smoke step
// (-bench=BenchmarkFig6 -benchtime=1x) seeds the wall-clock benchmark
// trajectory from it.
func BenchmarkFig6Executors(b *testing.B) {
	var entries []experiments.ExecWallEntry
	for i := 0; i < b.N; i++ {
		entries = experiments.ExecWallEntries(true)
	}
	for _, e := range entries {
		b.ReportMetric(e.WallSecondsPerEpoch*1e3, e.Model+"_"+e.Executor+"_ms/epoch")
	}
	buf, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_parallel.json", buf, 0o644); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkFig7aEpochs(b *testing.B) {
	benchDriver(b, "fig7a", "rowEpochs/SVM1 (rcv1)", "colEpochs/SVM1 (rcv1)")
}

func BenchmarkFig7bCrossover(b *testing.B) {
	benchDriver(b, "fig7b", "rowOverCol/0.10", "rowOverCol/1.00")
}

func BenchmarkFig8aModelRepEpochs(b *testing.B) {
	benchDriver(b, "fig8a", "epochs/PerMachine/10", "epochs/PerNode/10", "epochs/PerCore/10")
}

func BenchmarkFig8bModelRepTime(b *testing.B) {
	benchDriver(b, "fig8b", "perMachineOverPerNode")
}

func BenchmarkFig9aDataRepEpochs(b *testing.B) {
	benchDriver(b, "fig9a", "epochs/Sharding/10", "epochs/FullReplication/10")
}

func BenchmarkFig9bDataRepTime(b *testing.B) {
	benchDriver(b, "fig9b", "ratio/local2", "ratio/local8")
}

func BenchmarkFig11EndToEnd(b *testing.B) {
	benchDriver(b, "fig11", "t50/SVM/Reuters/DimmWitted", "t50/SVM/Reuters/Hogwild!")
}

func BenchmarkFig12aAccess(b *testing.B) {
	benchDriver(b, "fig12a", "row/SVM/RCV1/10", "col/SVM/RCV1/10")
}

func BenchmarkFig12bModelRep(b *testing.B) {
	benchDriver(b, "fig12b", "PerNode/SVM/RCV1/50", "PerMachine/SVM/RCV1/50")
}

func BenchmarkFig13Throughput(b *testing.B) {
	benchDriver(b, "fig13", "gbps/DimmWitted/parallel sum", "gbps/Hogwild!/parallel sum")
}

func BenchmarkFig14Plans(b *testing.B) {
	benchDriver(b, "fig14", "row/SVM/RCV1", "col/LP/Amazon")
}

func BenchmarkFig15AccessArch(b *testing.B) {
	benchDriver(b, "fig15", "svm/local2", "svm/local8")
}

func BenchmarkFig16aArch(b *testing.B) {
	benchDriver(b, "fig16a", "ratio/local2", "ratio/local8")
}

func BenchmarkFig16bSparsity(b *testing.B) {
	benchDriver(b, "fig16b", "ratio/0.01", "ratio/1.00")
}

func BenchmarkFig17aDataRep(b *testing.B) {
	benchDriver(b, "fig17a", "ratio/400", "fullOnly/50")
}

func BenchmarkFig17bExtensions(b *testing.B) {
	benchDriver(b, "fig17b", "gibbsSpeedup", "nnSpeedup")
}

func BenchmarkFig20Speedup(b *testing.B) {
	benchDriver(b, "fig20", "percore/12", "permachine/12")
}

func BenchmarkFig21Scalability(b *testing.B) {
	benchDriver(b, "fig21", "epochTime/0.10", "epochTime/1.00")
}

func BenchmarkFig22Importance(b *testing.B) {
	benchDriver(b, "fig22", "Imp10/50", "Imp100/50")
}

func BenchmarkAppAPlacement(b *testing.B) {
	benchDriver(b, "appA", "collocation", "denseOnDense", "sparseOnSparse")
}

// ---- Ablation benches for DESIGN.md's design choices ----

// BenchmarkAblationSyncInterval sweeps how often the asynchronous
// averaging worker fires (paper: "as frequently as possible" is best).
func BenchmarkAblationSyncInterval(b *testing.B) {
	spec := model.NewSVM()
	ds := data.RCV1()
	for _, rounds := range []int{1, 4, 16, -1} {
		name := "everyRound"
		switch rounds {
		case 4:
			name = "every4"
		case 16:
			name = "every16"
		case -1:
			name = "epochOnly"
		}
		b.Run(name, func(b *testing.B) {
			var epochs int
			for i := 0; i < b.N; i++ {
				eng, err := core.New(spec, ds, core.Plan{
					ModelRep: core.PerNode, DataRep: core.Sharding,
					SyncRounds: rounds, Seed: 3,
				})
				if err != nil {
					b.Fatal(err)
				}
				res := eng.RunToLoss(0.1, 100)
				epochs = res.Epochs
			}
			b.ReportMetric(float64(epochs), "epochs-to-0.1")
		})
	}
}

// BenchmarkAblationChunk sweeps the deterministic interleaver's chunk
// size (the staleness granularity of shared replicas).
func BenchmarkAblationChunk(b *testing.B) {
	spec := model.NewSVM()
	ds := data.RCV1()
	for _, chunk := range []int{1, 16, 256} {
		b.Run(sizeName(chunk), func(b *testing.B) {
			var epochs int
			for i := 0; i < b.N; i++ {
				eng, err := core.New(spec, ds, core.Plan{
					ModelRep: core.PerMachine, DataRep: core.Sharding,
					ChunkSize: chunk, Seed: 3,
				})
				if err != nil {
					b.Fatal(err)
				}
				epochs = eng.RunToLoss(0.1, 100).Epochs
			}
			b.ReportMetric(float64(epochs), "epochs-to-0.1")
		})
	}
}

func sizeName(n int) string {
	switch n {
	case 1:
		return "chunk1"
	case 16:
		return "chunk16"
	default:
		return "chunk256"
	}
}

// BenchmarkAblationAlpha verifies the optimizer's decision is robust
// across the paper's alpha range (Section 3.2: stable for 4x-100x).
func BenchmarkAblationAlpha(b *testing.B) {
	svm := model.NewSVM()
	lp := model.NewLP()
	rcv1, amazon := data.RCV1(), data.AmazonLP()
	stable := 1.0
	for i := 0; i < b.N; i++ {
		for _, top := range numa.Machines() {
			ps, err := core.Choose(svm, rcv1, top)
			if err != nil {
				b.Fatal(err)
			}
			pl, err := core.Choose(lp, amazon, top)
			if err != nil {
				b.Fatal(err)
			}
			if ps.Access != model.RowWise || pl.Access == model.RowWise {
				stable = 0
			}
		}
	}
	b.ReportMetric(stable, "decisions-stable")
}

// BenchmarkAblationStorage compares CSR against dense storage for the
// row access method on dense and sparse data (Appendix A).
func BenchmarkAblationStorage(b *testing.B) {
	spec := model.NewSVM()
	cases := []struct {
		name  string
		ds    *data.Dataset
		dense bool
	}{
		{"denseData/csr", data.Music(), false},
		{"denseData/dense", data.Music(), true},
		{"sparseData/csr", data.SubsampleSparsity(data.Music(), 0.05, 1), false},
		{"sparseData/dense", data.SubsampleSparsity(data.Music(), 0.05, 1), true},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var secs float64
			for i := 0; i < b.N; i++ {
				eng, err := core.New(spec, c.ds, core.Plan{
					ModelRep: core.PerNode, DenseStorage: c.dense,
				})
				if err != nil {
					b.Fatal(err)
				}
				secs = eng.RunEpoch().SimTime.Seconds()
			}
			b.ReportMetric(secs*1e6, "sim-us/epoch")
		})
	}
}

// BenchmarkAblationImportanceFraction sweeps the Importance sampling
// fraction (Appendix C.4's error-tolerance knob).
func BenchmarkAblationImportanceFraction(b *testing.B) {
	spec := model.NewLS()
	ds := data.MusicRegression()
	for _, frac := range []float64{0.05, 0.1, 0.5, 1.0} {
		b.Run(fracName(frac), func(b *testing.B) {
			var secs float64
			for i := 0; i < b.N; i++ {
				eng, err := core.New(spec, ds, core.Plan{
					Access: model.RowWise, ModelRep: core.PerNode,
					DataRep: core.Importance, ImportanceFraction: frac, Seed: 6,
				})
				if err != nil {
					b.Fatal(err)
				}
				res := eng.RunToLoss(0.006, 100)
				secs = res.Time.Seconds()
			}
			b.ReportMetric(secs*1e6, "sim-us-to-loss")
		})
	}
}

func fracName(f float64) string {
	switch f {
	case 0.05:
		return "frac05"
	case 0.1:
		return "frac10"
	case 0.5:
		return "frac50"
	default:
		return "frac100"
	}
}

// BenchmarkOptMethods races the first-order methods of internal/opt
// against each other in epochs-to-loss on least squares (the
// statistical-efficiency comparison behind the MLlib analysis).
func BenchmarkOptMethods(b *testing.B) {
	spec := model.NewLS()
	ds := data.MusicRegression()
	target := 0.006
	b.Run("gd", func(b *testing.B) {
		var epochs float64
		for i := 0; i < b.N; i++ {
			res, err := (&opt.GD{Step: 0.5}).Run(spec, ds, 60)
			if err != nil {
				b.Fatal(err)
			}
			if e, ok := res.Curve.EpochsTo(target); ok {
				epochs = float64(e)
			} else {
				epochs = 61
			}
		}
		b.ReportMetric(epochs, "epochs-to-loss")
	})
	b.Run("lbfgs", func(b *testing.B) {
		var epochs float64
		for i := 0; i < b.N; i++ {
			res, err := (&opt.LBFGS{}).Run(spec, ds, 60)
			if err != nil {
				b.Fatal(err)
			}
			if e, ok := res.Curve.EpochsTo(target); ok {
				epochs = float64(e)
			} else {
				epochs = 61
			}
		}
		b.ReportMetric(epochs, "epochs-to-loss")
	})
	b.Run("minibatch", func(b *testing.B) {
		var epochs float64
		for i := 0; i < b.N; i++ {
			res, err := (&opt.MiniBatch{Fraction: 0.1, Step: 0.5, Seed: 2}).Run(spec, ds, 60)
			if err != nil {
				b.Fatal(err)
			}
			if e, ok := res.Curve.EpochsTo(target); ok {
				epochs = float64(e)
			} else {
				epochs = 61
			}
		}
		b.ReportMetric(epochs, "epochs-to-loss")
	})
}

// BenchmarkGibbsThroughput measures the sampler's variables/second
// under both chain placements (Figure 17b's raw metric), through the
// workload engine.
func BenchmarkGibbsThroughput(b *testing.B) {
	g := factor.Paleo()
	plans := []struct {
		name string
		plan core.Plan
	}{
		{"PerMachine", core.Plan{ModelRep: core.PerMachine, DataRep: core.Sharding, Seed: 1}},
		{"PerNode", core.Plan{ModelRep: core.PerNode, DataRep: core.FullReplication, Seed: 1}},
	}
	for _, c := range plans {
		b.Run(c.name, func(b *testing.B) {
			var tp float64
			for i := 0; i < b.N; i++ {
				eng, err := core.NewWorkload(factor.NewWorkload(g), c.plan)
				if err != nil {
					b.Fatal(err)
				}
				steps := 0
				for _, er := range eng.RunEpochs(2) {
					steps += er.Steps
				}
				tp = float64(steps) / eng.SimTime().Seconds()
			}
			b.ReportMetric(tp/1e6, "Msamples/s")
		})
	}
}

// BenchmarkGibbsExecutors measures real wall-clock sweep times of the
// simulated and parallel executors on identical Gibbs plans and writes
// the measurements to BENCH_gibbs.json — the CI bench smoke step
// (-bench='BenchmarkFig6Executors|BenchmarkGibbsExecutors'
// -benchtime=1x) seeds the sampling wall-clock trajectory from it.
func BenchmarkGibbsExecutors(b *testing.B) {
	var entries []experiments.GibbsWallEntry
	for i := 0; i < b.N; i++ {
		entries = experiments.GibbsWallEntries(true)
	}
	for _, e := range entries {
		b.ReportMetric(e.SamplesPerSec/1e6, e.ModelRep+"_"+e.Executor+"_Msamples/s")
	}
	buf, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_gibbs.json", buf, 0o644); err != nil {
		b.Fatal(err)
	}
}
