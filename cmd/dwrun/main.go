// Command dwrun trains one model on one dataset under an explicit or
// optimizer-chosen plan and prints the per-epoch convergence trace.
//
//	dwrun -model svm -dataset rcv1                        # optimizer plan
//	dwrun -model lp -dataset amazon-lp -access col -rep permachine
//	dwrun -model svm -dataset reuters -machine local8 -epochs 40
//
// Training state round-trips through the versioned snapshot codec:
// -save writes the final engine state to a file, -resume restores one
// and continues under its original plan until -epochs total epochs,
// reproducing the uninterrupted run exactly (row access).
//
//	dwrun -model svm -dataset reuters -epochs 10 -save svm.snap
//	dwrun -resume svm.snap -epochs 40
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dimmwitted/internal/core"
	"dimmwitted/internal/data"
	"dimmwitted/internal/metrics"
	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
)

// datasetByName maps CLI names to dataset constructors.
func datasetByName(name string) (*data.Dataset, error) {
	switch name {
	case "rcv1":
		return data.RCV1(), nil
	case "reuters":
		return data.Reuters(), nil
	case "reuters10x":
		return data.ReutersReplicated(), nil
	case "music":
		return data.Music(), nil
	case "music-reg":
		return data.MusicRegression(), nil
	case "music10x":
		return data.MusicRegressionReplicated(), nil
	case "forest":
		return data.Forest(), nil
	case "amazon-lp":
		return data.AmazonLP(), nil
	case "google-lp":
		return data.GoogleLP(), nil
	case "amazon-qp":
		return data.AmazonQP(), nil
	case "google-qp":
		return data.GoogleQP(), nil
	case "clueweb":
		return data.ClueWeb(0.1), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q (rcv1, reuters, reuters10x, music, music-reg, music10x, forest, amazon-lp, google-lp, amazon-qp, google-qp, clueweb)", name)
	}
}

func main() {
	modelName := flag.String("model", "svm", "model: svm, lr, ls, lp, qp, sum")
	dsName := flag.String("dataset", "reuters", "dataset name")
	executor := flag.String("executor", "simulated", "execution backend: simulated, parallel")
	machine := flag.String("machine", "local2", "machine: local2, local4, local8, ec2.1, ec2.2")
	access := flag.String("access", "", "force access method: row, col (empty = optimizer)")
	rep := flag.String("rep", "", "force model replication: percore, pernode, permachine")
	dataRep := flag.String("datarep", "", "force data replication: sharding, full, importance")
	epochs := flag.Int("epochs", 20, "epochs to run")
	target := flag.Float64("target", 0, "stop at this loss (0 = run all epochs)")
	seed := flag.Int64("seed", 1, "random seed")
	csvPath := flag.String("csv", "", "write the loss curve as CSV to this file")
	savePath := flag.String("save", "", "write the final engine snapshot to this file")
	resumePath := flag.String("resume", "", "resume from a -save snapshot (its model/dataset/plan override the flags)")
	flag.Parse()

	die := func(err error) {
		fmt.Fprintf(os.Stderr, "dwrun: %v\n", err)
		os.Exit(1)
	}

	var resume *core.Snapshot
	if *resumePath != "" {
		raw, err := os.ReadFile(*resumePath)
		if err != nil {
			die(err)
		}
		snap, err := core.DecodeSnapshot(raw)
		if err != nil {
			die(err)
		}
		if snap.Workload != core.WorkloadGLM {
			die(fmt.Errorf("snapshot %s holds a %s workload; dwrun trains GLM tasks", *resumePath, snap.Workload))
		}
		if snap.Epoch >= *epochs {
			// -epochs is the total target; a budget the snapshot already
			// reached would silently train nothing (the serve layer's
			// warm_start rejects this the same way).
			die(fmt.Errorf("snapshot %s is already at epoch %d; -epochs %d must exceed it", *resumePath, snap.Epoch, *epochs))
		}
		resume = &snap
		*modelName, *dsName = snap.Spec, snap.Dataset
	}

	spec, err := model.ByName(*modelName)
	if err != nil {
		die(err)
	}
	ds, err := datasetByName(*dsName)
	if err != nil {
		die(err)
	}
	top, err := numa.ByName(*machine)
	if err != nil {
		die(err)
	}

	exec, err := core.ExecutorByName(*executor)
	if err != nil {
		die(err)
	}
	plan, err := core.ChooseExecutor(spec, ds, top, exec)
	if err != nil {
		die(err)
	}
	switch strings.ToLower(*access) {
	case "":
	case "row":
		plan.Access = model.RowWise
	case "col", "column":
		plan.Access = spec.Supports()[0]
		if plan.Access == model.RowWise {
			plan.Access = spec.Supports()[1]
		}
	default:
		die(fmt.Errorf("unknown access %q", *access))
	}
	switch strings.ToLower(*rep) {
	case "":
	case "percore":
		plan.ModelRep = core.PerCore
	case "pernode":
		plan.ModelRep = core.PerNode
	case "permachine":
		plan.ModelRep = core.PerMachine
	default:
		die(fmt.Errorf("unknown model replication %q", *rep))
	}
	switch strings.ToLower(*dataRep) {
	case "":
	case "sharding":
		plan.DataRep = core.Sharding
	case "full":
		plan.DataRep = core.FullReplication
	case "importance":
		plan.DataRep = core.Importance
	default:
		die(fmt.Errorf("unknown data replication %q", *dataRep))
	}
	plan.Seed = *seed
	plan.Step = 0 // let Normalize repick for the (possibly new) access
	plan.StepDecay = 0
	plan = plan.Normalize(spec)
	if resume != nil {
		// A resumed run must re-run the snapshot's plan, or the
		// remaining epochs would diverge from the original run. The
		// reporting axis follows the plan's executor, not the flag.
		plan = resume.Plan
		exec = plan.Executor
	}

	eng, err := core.New(spec, ds, plan)
	if err != nil {
		die(err)
	}
	if resume != nil {
		if err := eng.Restore(*resume); err != nil {
			die(err)
		}
		fmt.Printf("resumed %s from %s: epoch %d, loss %.6g\n", spec.Name(), *resumePath, resume.Epoch, resume.Loss)
	}
	fmt.Printf("task: %s on %s (%d x %d, %d nnz)\n", spec.Name(), ds.Name, ds.Rows(), ds.Cols(), ds.NNZ())
	fmt.Printf("plan: %s\n\n", plan)
	curve := &metrics.Curve{Name: fmt.Sprintf("%s-%s", spec.Name(), ds.Name)}
	fmt.Printf("%-7s %-14s %-14s %s\n", "epoch", "loss", "epoch time", "total time")
	for eng.Epoch() < *epochs {
		er := eng.RunEpoch()
		// The simulated backend's time axis is simulated cycles; the
		// parallel backend's is measured wall clock.
		epochT, totalT := er.SimTime, er.CumTime
		if exec == core.ExecParallel {
			epochT, totalT = er.WallTime, eng.WallTime()
		}
		fmt.Printf("%-7d %-14.6g %-14v %v\n", er.Epoch, er.Loss, epochT, totalT)
		if err := curve.Append(metrics.Point{Epoch: er.Epoch, Time: er.CumTime, Wall: eng.WallTime(), Loss: er.Loss}); err != nil {
			die(err)
		}
		if *target > 0 && er.Loss <= *target {
			fmt.Printf("\nreached target %g at epoch %d (%v)\n", *target, er.Epoch, totalT)
			break
		}
		if curve.Plateaued(10, 1e-4) {
			fmt.Println("\nloss plateaued; stopping early")
			break
		}
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			die(err)
		}
		if err := metrics.WriteCSV(f, curve); err != nil {
			die(err)
		}
		if err := f.Close(); err != nil {
			die(err)
		}
		fmt.Printf("\nloss curve written to %s\n", *csvPath)
	}
	if *savePath != "" {
		if err := os.WriteFile(*savePath, core.EncodeSnapshot(eng.Snapshot()), 0o644); err != nil {
			die(err)
		}
		fmt.Printf("\nsnapshot written to %s (epoch %d, resumable with -resume)\n", *savePath, eng.Epoch())
	}
	if exec == core.ExecParallel {
		fmt.Printf("\nwall-clock training time: %v\n", eng.WallTime())
		return
	}
	ctr := eng.Counters()
	fmt.Printf("\ncounters: %v\n", ctr)
	fmt.Printf("cross-node DRAM ratio: %.2f\n", ctr.CrossNodeDRAMRatio())
}
