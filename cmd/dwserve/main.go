// Command dwserve runs the DimmWitted training and serving daemon: a
// JSON HTTP API that schedules training jobs onto a NUMA-sized worker
// pool, caches optimizer plans, and serves batched predictions from
// trained models.
//
//	dwserve                                 # listen on :8080, local2
//	dwserve -addr :9000 -machine local8     # 8 sockets, 8 job slots
//	dwserve -slots 4 -queue 1024
//	dwserve -store /var/lib/dimmwitted      # durable models + crash-resume
//	dwserve -store ./state -checkpoint-every 1
//	dwserve -batch-window 500us             # micro-batch /v1/predict
//	dwserve -batch-window 1ms -batch-max 128 -predict-queue 512
//	dwserve -batch-window 1ms -auto-batch   # AIMD-tune window and cap
//	dwserve -batch-window 1ms -auto-batch -auto-batch-target 2ms
//	dwserve -debug-addr localhost:6060      # pprof on a separate port
//
// With -batch-window, concurrent /v1/predict requests for the same
// model coalesce into one batched scorer call (identical results,
// higher throughput); when the bounded predict queue fills, requests
// are rejected with 429 and a Retry-After header instead of stacking
// latency. Per-route latency percentiles appear under "latency" in
// /v1/stats, the queue-depth gauge under "batch". Adding -auto-batch
// runs an AIMD controller that retunes the window and cap live: p95
// latency over -auto-batch-target halves both, a healthy coalescing
// factor under target grows both additively ("batch_tuner" in
// /v1/stats shows the current settings and decision counts).
//
// The optimizer is self-tuning by default: every finished epoch feeds
// its wall clock back into plan choice, and once a plan has enough
// observations (-feedback-min-obs) the measured cost overrides the
// static estimate, with an occasional exploration of the runner-up
// plan (-feedback-epsilon). Job status reports "plan_source" plus
// predicted vs observed seconds-per-epoch; learned costs persist under
// -store and survive restarts. -no-feedback restores purely static
// planning:
//
//	dwserve -feedback-min-obs 5 -feedback-epsilon 0.1
//	dwserve -no-feedback
//
// With -store, trained models persist across restarts (served lazily
// on first use), running jobs checkpoint their full resume state every
// -checkpoint-every epochs, and interrupted jobs revive via
//
//	curl -s -X POST localhost:8080/v1/jobs/job-1/resume
//	curl -s localhost:8080/v1/train -d '{"warm_start":"job-1","max_epochs":100}'
//
// Example session (the "workload" knob selects GLM training — the
// default — Gibbs sampling over a registered factor graph, or neural-
// network training over a registered image corpus):
//
//	curl -s localhost:8080/v1/train -d '{"model":"svm","dataset":"reuters","target_loss":0.3}'
//	curl -s localhost:8080/v1/train -d '{"workload":"gibbs","dataset":"paleo","executor":"parallel"}'
//	curl -s localhost:8080/v1/train -d '{"workload":"nn","dataset":"mnist","max_epochs":20}'
//	curl -s localhost:8080/v1/jobs/job-1
//	curl -s localhost:8080/v1/predict -d '{"model":"job-1","examples":[{"indices":[3,17],"values":[1,0.5]}]}'
//	curl -s localhost:8080/v1/stats
//
// Observability: submit a job with "trace": true and read its phase
// breakdown at /v1/jobs/{id}/trace (add ?format=chrome for a
// chrome://tracing export); /metrics serves the Prometheus text
// exposition; -debug-addr serves net/http/pprof off the public port:
//
//	curl -s localhost:8080/v1/train -d '{"workload":"gibbs","dataset":"cycle5","executor":"parallel","trace":true}'
//	curl -s localhost:8080/v1/jobs/job-1/trace | jq .summary
//	curl -s localhost:8080/metrics | grep engine_phase
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
//
// Cluster mode: -peer-of registers this server with a dwcoord
// coordinator at startup, which then ships it dataset shards and
// drives PerCluster training rounds against it; -advertise is the
// address the coordinator should dial back (defaults to -addr):
//
//	dwserve -addr :8081 -peer-of http://coord:8090 -advertise host1:8081
//
// Hardening: request bodies are capped at -max-body-bytes (413 past
// the limit), the listeners carry header/idle timeouts, and SIGINT/
// SIGTERM drain gracefully — in-flight requests finish, running jobs
// checkpoint to -store, and feedback flushes — so a restarted server
// resumes its jobs with POST /v1/jobs/{id}/resume.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dimmwitted/internal/data"
	"dimmwitted/internal/factor"
	"dimmwitted/internal/nn"
	"dimmwitted/internal/numa"
	"dimmwitted/internal/serve"
	"dimmwitted/internal/tune"
)

// registerWithCoordinator announces this server to a dwcoord
// coordinator, retrying while the coordinator comes up.
func registerWithCoordinator(coord, advertise string) error {
	if !strings.Contains(coord, "://") {
		coord = "http://" + coord
	}
	body, _ := json.Marshal(map[string]string{"addr": advertise})
	client := &http.Client{Timeout: 10 * time.Second}
	var lastErr error
	for attempt := 0; attempt < 10; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * 500 * time.Millisecond)
		}
		resp, err := client.Post(strings.TrimRight(coord, "/")+"/v1/cluster/join",
			"application/json", bytes.NewReader(body))
		if err != nil {
			lastErr = err
			continue
		}
		resp.Body.Close()
		if resp.StatusCode/100 == 2 {
			return nil
		}
		lastErr = fmt.Errorf("coordinator answered %s", resp.Status)
	}
	return lastErr
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	machine := flag.String("machine", "local2", "simulated machine (local2, local4, local8, ec2.1, ec2.2)")
	slots := flag.Int("slots", 0, "concurrent training jobs (0 = one per NUMA node)")
	queue := flag.Int("queue", 0, "job queue depth (0 = 256)")
	store := flag.String("store", "", "durable state directory: persists trained models and job checkpoints (empty = memory only)")
	ckptEvery := flag.Int("checkpoint-every", 5, "checkpoint running jobs every N epochs (needs -store; 0 = never)")
	batchWindow := flag.Duration("batch-window", 0, "micro-batch window for /v1/predict: concurrent requests for one model coalesce into one batched call (0 = no batching)")
	batchMax := flag.Int("batch-max", 0, "max coalesced examples per batched predict flush (0 = 256; needs -batch-window)")
	predictQueue := flag.Int("predict-queue", 0, "predict admission-queue depth; a full queue answers 429 Retry-After (0 = 1024; needs -batch-window)")
	debugAddr := flag.String("debug-addr", "", "separate listen address for net/http/pprof (e.g. localhost:6060; empty = no profiling endpoint)")
	noFeedback := flag.Bool("no-feedback", false, "disable the self-tuning optimizer: plans come from the static cost model alone")
	feedbackMinObs := flag.Int("feedback-min-obs", 0, "observed epochs before a measured cost overrides the static plan choice (0 = 3)")
	feedbackEpsilon := flag.Float64("feedback-epsilon", 0, "probability of exploring the runner-up plan instead of the winner (0 = 0.05; negative disables exploration)")
	autoBatch := flag.Bool("auto-batch", false, "auto-tune -batch-window/-batch-max from live p95 latency and the coalescing factor (needs -batch-window)")
	autoBatchTarget := flag.Duration("auto-batch-target", 0, "p95 latency goal the batch auto-tuner defends (0 = 5ms; needs -auto-batch)")
	maxBody := flag.Int64("max-body-bytes", 0, "request body cap in bytes; oversized requests answer 413 (0 = 64 MiB, negative = unlimited)")
	peerOf := flag.String("peer-of", "", "coordinator URL to join as a cluster peer (e.g. http://coord:8090)")
	advertise := flag.String("advertise", "", "address the coordinator dials back for this peer (default: -addr)")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second, "how long SIGTERM waits for in-flight requests before forcing the close")
	flag.Parse()

	top, err := numa.ByName(*machine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	opts := serve.Options{
		Machine:         top,
		Slots:           *slots,
		QueueDepth:      *queue,
		BatchWindow:     *batchWindow,
		BatchMax:        *batchMax,
		PredictQueue:    *predictQueue,
		DisableFeedback: *noFeedback,
		AutoBatch:       *autoBatch,
		AutoBatchConfig: serve.BatchTunerConfig{TargetP95: *autoBatchTarget},
		MaxBodyBytes:    *maxBody,
	}
	if !*noFeedback {
		opts.Feedback = tune.NewStore(tune.Options{
			MinObservations: *feedbackMinObs,
			Epsilon:         *feedbackEpsilon,
		})
	}
	if *store != "" {
		jobs, models, tuner, err := serve.OpenStores(*store)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		opts.Checkpoints = jobs
		opts.Models = models
		opts.CheckpointEvery = *ckptEvery
		if opts.Feedback != nil {
			// Learned plan costs survive restarts alongside the models
			// they were measured for.
			if err := opts.Feedback.Persist(tuner); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
	}

	srv := serve.NewServer(opts)

	// Shutdown order matters: stop accepting requests first, then close
	// the server (which cancels running jobs, checkpoints them to
	// -store, and flushes optimizer feedback). SIGINT/SIGTERM trigger
	// it; a second signal kills the process the usual way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Both listeners carry header/idle timeouts so an idle or trickling
	// client cannot pin a connection goroutine forever. No blanket
	// ReadTimeout: training submissions are small, but replica pushes
	// and shard appends are bounded by -max-body-bytes instead.
	var debugSrv *http.Server
	if *debugAddr != "" {
		// Profiling lives on its own listener so /debug/pprof never
		// shares the public API port; bind it to loopback in production.
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           serve.DebugHandler(),
			ReadHeaderTimeout: 10 * time.Second,
			IdleTimeout:       2 * time.Minute,
		}
		go func() {
			log.Printf("dwserve: pprof on http://%s/debug/pprof/", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Fatal(err)
			}
		}()
	}

	if *peerOf != "" {
		peerAddr := *advertise
		if peerAddr == "" {
			peerAddr = *addr
		}
		go func() {
			if err := registerWithCoordinator(*peerOf, peerAddr); err != nil {
				log.Printf("dwserve: could not join coordinator %s: %v", *peerOf, err)
				return
			}
			log.Printf("dwserve: joined cluster coordinator %s as %s", *peerOf, peerAddr)
		}()
	}

	durability := "memory only"
	if *store != "" {
		durability = fmt.Sprintf("store %s (checkpoint every %d epochs)", *store, *ckptEvery)
	}
	batching := "predict batching off"
	if *batchWindow > 0 {
		batching = fmt.Sprintf("predict batching %v", *batchWindow)
		if *autoBatch {
			batching += " (auto-tuned)"
		}
	}
	if *noFeedback {
		batching += ", static planning"
	} else {
		batching += ", self-tuning optimizer"
	}
	log.Printf("dwserve: listening on %s, machine %s, %d training slots, %s, %s, datasets %v, graphs %v, nn datasets %v",
		*addr, top.Name, srv.Scheduler().Slots(), durability, batching, data.Names(), factor.GraphNames(), nn.DatasetNames())

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errCh:
		srv.Close()
		log.Fatal(err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C force-kills
		log.Printf("dwserve: signal received, draining for up to %v", *shutdownGrace)
		sctx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		if err := httpSrv.Shutdown(sctx); err != nil {
			log.Printf("dwserve: forcing listener close: %v", err)
			_ = httpSrv.Close()
		}
		cancel()
		if debugSrv != nil {
			_ = debugSrv.Close()
		}
		// Checkpoint running jobs and flush learned costs before exit.
		srv.Close()
		log.Printf("dwserve: shutdown complete")
	}
}
