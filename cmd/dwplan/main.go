// Command dwplan shows the cost-based optimizer's reasoning for a
// task: the Figure 6 cost of each supported access method, the probe
// traffic, and the chosen plan (the Figure 14 entry).
//
//	dwplan -model svm -dataset rcv1 -machine local2
package main

import (
	"flag"
	"fmt"
	"os"

	"dimmwitted/internal/core"
	"dimmwitted/internal/data"
	"dimmwitted/internal/model"
	"dimmwitted/internal/numa"
)

func main() {
	modelName := flag.String("model", "svm", "model: svm, lr, ls, lp, qp, sum")
	dsName := flag.String("dataset", "rcv1", "dataset name (as in dwrun)")
	machine := flag.String("machine", "local2", "machine name")
	flag.Parse()

	die := func(err error) {
		fmt.Fprintf(os.Stderr, "dwplan: %v\n", err)
		os.Exit(1)
	}

	spec, err := model.ByName(*modelName)
	if err != nil {
		die(err)
	}
	var ds *data.Dataset
	switch *dsName {
	case "rcv1":
		ds = data.RCV1()
	case "reuters":
		ds = data.Reuters()
	case "music":
		ds = data.Music()
	case "music-reg":
		ds = data.MusicRegression()
	case "forest":
		ds = data.Forest()
	case "amazon-lp":
		ds = data.AmazonLP()
	case "google-lp":
		ds = data.GoogleLP()
	case "amazon-qp":
		ds = data.AmazonQP()
	case "google-qp":
		ds = data.GoogleQP()
	default:
		die(fmt.Errorf("unknown dataset %q", *dsName))
	}
	top, err := numa.ByName(*machine)
	if err != nil {
		die(err)
	}

	fmt.Printf("task: %s on %s (%d x %d, %d nnz, avg n_i %.1f)\n",
		spec.Name(), ds.Name, ds.Rows(), ds.Cols(), ds.NNZ(), ds.AvgRowNNZ())
	fmt.Printf("machine: %s (alpha = %.1f)\n\n", top, top.Alpha())

	fmt.Println("Figure 6 cost model (words, writes weighted by alpha):")
	for _, a := range spec.Supports() {
		cost := core.PaperCost(spec, ds, a, top)
		fmt.Printf("  %-14s %.4g\n", a.String(), cost)
	}
	fmt.Println("\nprobe traffic (average words per step):")
	for _, a := range spec.Supports() {
		st := core.ProbeStats(spec, ds, a, 64)
		fmt.Printf("  %-14s data=%d modelR=%d modelW=%d auxR=%d auxW=%d flops=%d\n",
			a, st.DataWords, st.ModelReads, st.ModelWrites, st.AuxReads, st.AuxWrites, st.Flops)
	}

	plan, err := core.Choose(spec, ds, top)
	if err != nil {
		die(err)
	}
	fmt.Printf("\nchosen plan: %s\n", plan)
	fmt.Printf("cost ratio (Figure 7b, alpha=%.0f): %.3f\n", top.Alpha(), core.CostRatio(ds, top.Alpha()))
}
