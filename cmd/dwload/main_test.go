package main

import (
	"math"
	"testing"
)

func TestErrorRateGate(t *testing.T) {
	cases := []struct {
		name     string
		rep      report
		max      float64
		rate     float64
		exceeded bool
	}{
		{"gate off ignores errors", report{Issued: 10, Errors: 10}, 1, 0, false},
		{"clean run passes", report{Issued: 100}, 0.01, 0, false},
		{"rate at threshold passes", report{Issued: 100, Errors: 1}, 0.01, 0.01, false},
		{"rate above threshold fails", report{Issued: 100, Errors: 2}, 0.01, 0.02, true},
		{"rejected count toward the rate", report{Issued: 100, Rejected: 5}, 0.04, 0.05, true},
		{"errors and rejections combine", report{Issued: 200, Errors: 5, Rejected: 5}, 0.04, 0.05, true},
		{"zero issued with active gate fails", report{}, 0.5, 1, true},
		{"zero tolerance fails on any error", report{Issued: 1000, Errors: 1}, 0, 0.001, true},
		{"zero tolerance passes a clean run", report{Issued: 1000}, 0, 0, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rate, exceeded := errorRate(c.rep, c.max)
			if math.Abs(rate-c.rate) > 1e-12 || exceeded != c.exceeded {
				t.Fatalf("errorRate(%+v, %v) = (%v, %v), want (%v, %v)",
					c.rep, c.max, rate, exceeded, c.rate, c.exceeded)
			}
		})
	}
}
