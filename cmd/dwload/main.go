// Command dwload is a load generator for a running dwserve: it drives
// train-then-predict traffic at a target request rate and prints a
// client-side throughput/latency report next to the server's own
// /v1/stats accounting.
//
//	dwload -model job-1 -rps 500 -duration 10s        # drive an existing model
//	dwload -train svm -dataset reuters -epochs 20     # train first, then drive
//	dwload -rps 2000 -concurrency 128 -examples 8     # bigger batches, more workers
//	dwload -train svm -dataset reuters -json load.json
//	dwload -model job-1 -max-error-rate 0.01          # CI gate: exit 1 past 1%
//	dwload -append clicks -cols 1024 -chunks 20       # stream ingestion traffic
//
// dwload paces an open(ish) loop: a pacer emits request tokens at the
// target rate into a bounded hand-off, -concurrency workers consume
// them, and tokens nobody picks up in time are counted as "unsent" —
// so when the client saturates, the report says so instead of
// silently measuring a slower test. 429 responses (dwserve's predict
// admission control, -batch-window) are counted separately from
// errors: they are the server shedding load as designed.
//
// GLM models get random sparse examples in the model's coordinate
// space; gibbs models get single-variable marginal lookups. NN models
// are not driven (their input dimension is not recoverable from the
// listing alone).
//
// -append switches dwload into ingestion mode: it POSTs chunks of
// random labelled sparse rows to /v1/datasets/{id}/append (creating
// the stream on the first chunk) and reports the version and row
// count the server published after each chunk — the client half of an
// online-training job reading the same stream.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// modelInfo mirrors the /v1/models listing row dwload needs.
type modelInfo struct {
	ID       string `json:"id"`
	Workload string `json:"workload"`
	Spec     string `json:"spec"`
	Dataset  string `json:"dataset"`
	Dim      int    `json:"dim"`
}

// exampleJSON mirrors the /v1/predict example encoding.
type exampleJSON struct {
	Indices []int32   `json:"indices,omitempty"`
	Values  []float64 `json:"values,omitempty"`
}

type predictRequest struct {
	Model    string        `json:"model"`
	Examples []exampleJSON `json:"examples"`
}

// latencySnapshot mirrors the /v1/stats per-route histogram summary.
type latencySnapshot struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// statsSubset decodes the slice of /v1/stats the report prints.
type statsSubset struct {
	Latency map[string]latencySnapshot `json:"latency"`
	Batch   *struct {
		Requests int64 `json:"requests"`
		Batches  int64 `json:"batches"`
		Rejected int64 `json:"rejected"`
	} `json:"batch"`
}

// report is the machine-readable result (-json).
type report struct {
	Addr        string  `json:"addr"`
	Model       string  `json:"model"`
	Workload    string  `json:"workload"`
	TargetRPS   float64 `json:"target_rps"`
	Seconds     float64 `json:"seconds"`
	Concurrency int     `json:"concurrency"`
	Examples    int     `json:"examples_per_request"`

	Issued   int64 `json:"issued"`
	OK       int64 `json:"ok"`
	Rejected int64 `json:"rejected_429"`
	Errors   int64 `json:"errors"`
	Unsent   int64 `json:"unsent"`

	AchievedRPS    float64 `json:"achieved_rps"`
	PredictionsSec float64 `json:"predictions_per_sec"`
	P50Ms          float64 `json:"p50_ms"`
	P95Ms          float64 `json:"p95_ms"`
	P99Ms          float64 `json:"p99_ms"`
	MaxMs          float64 `json:"max_ms"`
	MeanMs         float64 `json:"mean_ms"`

	Server *latencySnapshot `json:"server_predict_latency,omitempty"`
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "dwserve base URL")
	modelID := flag.String("model", "", "registry model id to drive (empty: use -train)")
	train := flag.String("train", "", "train this GLM spec first (svm, lr, ...) and drive the resulting model")
	dataset := flag.String("dataset", "reuters", "dataset for -train")
	epochs := flag.Int("epochs", 10, "max_epochs for -train")
	rps := flag.Float64("rps", 200, "target request rate")
	duration := flag.Duration("duration", 10*time.Second, "how long to drive traffic")
	concurrency := flag.Int("concurrency", 32, "client worker goroutines")
	examples := flag.Int("examples", 4, "examples per predict request")
	nnz := flag.Int("nnz", 8, "nonzeros per sparse example")
	seed := flag.Int64("seed", 1, "example-generation seed")
	jsonOut := flag.String("json", "", "also write the report as JSON to this file")
	maxErrorRate := flag.Float64("max-error-rate", 1, "fail (exit 1) when (errors+429s)/issued exceeds this fraction; 1 never fails")
	appendTo := flag.String("append", "", "ingestion mode: append random rows to this stream dataset instead of driving predictions")
	cols := flag.Int("cols", 256, "stream dimension for -append (used when the stream does not exist yet)")
	chunks := flag.Int("chunks", 10, "number of append chunks for -append")
	chunkRows := flag.Int("chunk-rows", 500, "rows per append chunk for -append")
	chunkGap := flag.Duration("chunk-gap", 0, "pause between append chunks for -append (0: back to back)")
	flag.Parse()

	client := &http.Client{Timeout: 30 * time.Second}
	if *appendTo != "" {
		if err := runAppend(client, *addr, *appendTo, *cols, *chunks, *chunkRows, *nnz, *seed, *chunkGap); err != nil {
			fmt.Fprintln(os.Stderr, "dwload:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(client, *addr, *modelID, *train, *dataset, *epochs, *rps, *duration,
		*concurrency, *examples, *nnz, *seed, *jsonOut, *maxErrorRate); err != nil {
		fmt.Fprintln(os.Stderr, "dwload:", err)
		os.Exit(1)
	}
}

// appendRowJSON mirrors the /v1/datasets/{id}/append row encoding.
type appendRowJSON struct {
	Indices []int32   `json:"indices,omitempty"`
	Values  []float64 `json:"values,omitempty"`
	Label   float64   `json:"label"`
}

// runAppend drives ingestion traffic: -chunks chunks of -chunk-rows
// random sparse rows each, labelled by a fixed hidden linear model so
// an online job training on the stream has something learnable.
func runAppend(client *http.Client, addr, stream string, cols, chunks, chunkRows, nnz int,
	seed int64, gap time.Duration) error {
	if cols <= 0 || chunks <= 0 || chunkRows <= 0 || nnz <= 0 {
		return fmt.Errorf("cols, chunks, chunk-rows and nnz must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	truth := make([]float64, cols)
	for j := range truth {
		truth[j] = rng.NormFloat64()
	}
	fmt.Printf("dwload: appending %d chunks x %d rows (dim %d, %d nnz/row) to %s/v1/datasets/%s/append\n",
		chunks, chunkRows, cols, nnz, addr, stream)

	var totalRows int
	start := time.Now()
	for c := 0; c < chunks; c++ {
		rows := make([]appendRowJSON, chunkRows)
		for i := range rows {
			k := nnz
			if k > cols {
				k = cols
			}
			idx := rng.Perm(cols)[:k]
			sort.Ints(idx)
			row := appendRowJSON{Indices: make([]int32, k), Values: make([]float64, k)}
			score := 0.0
			for j, v := range idx {
				row.Indices[j] = int32(v)
				row.Values[j] = rng.NormFloat64()
				score += row.Values[j] * truth[v]
			}
			if score >= 0 {
				row.Label = 1
			} else {
				row.Label = -1
			}
			rows[i] = row
		}
		req := map[string]any{"rows": rows}
		if c == 0 {
			// Cols only matters when the first chunk creates the stream;
			// the server ignores a matching value on later chunks.
			req["cols"] = cols
		}
		body, err := json.Marshal(req)
		if err != nil {
			return err
		}
		resp, err := client.Post(addr+"/v1/datasets/"+stream+"/append", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("append chunk %d: status %d: %s", c, resp.StatusCode, raw)
		}
		var ar struct {
			Version uint64 `json:"version"`
			Rows    int    `json:"rows"`
		}
		if err := json.Unmarshal(raw, &ar); err != nil {
			return err
		}
		totalRows = ar.Rows
		fmt.Printf("chunk %2d: server published version %d, %d rows total\n", c, ar.Version, ar.Rows)
		if gap > 0 && c < chunks-1 {
			time.Sleep(gap)
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("appended %d rows in %.2fs (%.0f rows/s end to end)\n",
		chunks*chunkRows, elapsed.Seconds(), float64(chunks*chunkRows)/elapsed.Seconds())
	fmt.Printf("stream %s now serves %d rows; train on it with {\"dataset\": %q, \"online\": true}\n",
		stream, totalRows, stream)
	return nil
}

func run(client *http.Client, addr, modelID, train, dataset string, epochs int,
	rps float64, duration time.Duration, concurrency, examples, nnz int, seed int64,
	jsonOut string, maxErrorRate float64) error {
	if rps <= 0 || concurrency <= 0 || examples <= 0 {
		return fmt.Errorf("rps, concurrency and examples must be positive")
	}
	if maxErrorRate < 0 || maxErrorRate > 1 {
		return fmt.Errorf("max-error-rate must be in [0, 1], got %g", maxErrorRate)
	}
	if train != "" {
		id, err := trainModel(client, addr, train, dataset, epochs)
		if err != nil {
			return err
		}
		fmt.Printf("dwload: trained %s/%s as %s\n", train, dataset, id)
		modelID = id
	}
	if modelID == "" {
		return fmt.Errorf("need -model ID or -train SPEC")
	}
	info, err := findModel(client, addr, modelID)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(seed))
	pool, err := examplePool(info, examples, nnz, rng)
	if err != nil {
		return err
	}

	fmt.Printf("dwload: target %.0f req/s for %v against %s, model %s (%s %s/%s, dim %d), %d workers, %d examples/request\n",
		rps, duration, addr, info.ID, info.Workload, info.Spec, info.Dataset, info.Dim, concurrency, examples)

	rep := drive(client, addr, info, pool, rps, duration, concurrency)
	rep.Examples = examples

	// Server-side accounting, best-effort.
	var stats statsSubset
	if err := getJSON(client, addr+"/v1/stats", &stats); err == nil {
		if sl, ok := stats.Latency["POST /v1/predict"]; ok {
			rep.Server = &sl
		}
		if stats.Batch != nil && stats.Batch.Batches > 0 {
			fmt.Printf("server batching: %d requests over %d batches (%.2f req/batch), %d rejected\n",
				stats.Batch.Requests, stats.Batch.Batches,
				float64(stats.Batch.Requests)/float64(stats.Batch.Batches), stats.Batch.Rejected)
		}
	}

	printReport(rep)
	if jsonOut != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, buf, 0o644); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", jsonOut)
	}
	// The report is always printed (and written) before the gate, so a
	// failing run still documents what happened.
	if rate, bad := errorRate(rep, maxErrorRate); bad {
		return fmt.Errorf("error rate %.2f%% (errors+429s over issued) exceeds -max-error-rate %.2f%%",
			rate*100, maxErrorRate*100)
	}
	return nil
}

// errorRate computes the failed fraction of issued requests — HTTP
// errors plus admission-control rejections — and reports whether it
// exceeds the gate. A run that issued nothing is itself a failure when
// any gate below 1 is set: an idle load test proves nothing.
func errorRate(rep report, max float64) (rate float64, exceeded bool) {
	if max >= 1 {
		return 0, false
	}
	if rep.Issued == 0 {
		return 1, true
	}
	rate = float64(rep.Errors+rep.Rejected) / float64(rep.Issued)
	return rate, rate > max
}

// trainModel submits a training job and polls it to completion.
func trainModel(client *http.Client, addr, spec, dataset string, epochs int) (string, error) {
	body, _ := json.Marshal(map[string]any{"model": spec, "dataset": dataset, "max_epochs": epochs})
	resp, err := client.Post(addr+"/v1/train", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("train: status %d: %s", resp.StatusCode, raw)
	}
	var tr struct {
		JobID string `json:"job_id"`
	}
	if err := json.Unmarshal(raw, &tr); err != nil {
		return "", err
	}
	for {
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := getJSON(client, addr+"/v1/jobs/"+tr.JobID, &st); err != nil {
			return "", err
		}
		switch st.State {
		case "done":
			return tr.JobID, nil
		case "failed", "cancelled":
			return "", fmt.Errorf("training job %s ended %s: %s", tr.JobID, st.State, st.Error)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// findModel locates the model in the /v1/models listing.
func findModel(client *http.Client, addr, id string) (modelInfo, error) {
	var listing struct {
		Models []modelInfo `json:"models"`
	}
	if err := getJSON(client, addr+"/v1/models", &listing); err != nil {
		return modelInfo{}, err
	}
	for _, m := range listing.Models {
		if m.ID == id {
			return m, nil
		}
	}
	return modelInfo{}, fmt.Errorf("model %q not in /v1/models listing", id)
}

// examplePool pre-generates a rotation of request payloads in the
// model's input encoding, so the hot loop only serialises and sends.
func examplePool(info modelInfo, perReq, nnz int, rng *rand.Rand) ([][]byte, error) {
	if info.Dim <= 0 {
		return nil, fmt.Errorf("model %s has dimension %d", info.ID, info.Dim)
	}
	const poolSize = 64
	pool := make([][]byte, poolSize)
	for p := range pool {
		exs := make([]exampleJSON, perReq)
		for i := range exs {
			switch info.Workload {
			case "gibbs":
				exs[i] = exampleJSON{Indices: []int32{int32(rng.Intn(info.Dim))}, Values: []float64{1}}
			case "glm":
				k := nnz
				if k > info.Dim {
					k = info.Dim
				}
				idx := rng.Perm(info.Dim)[:k]
				sort.Ints(idx)
				ex := exampleJSON{Indices: make([]int32, k), Values: make([]float64, k)}
				for j, v := range idx {
					ex.Indices[j] = int32(v)
					ex.Values[j] = rng.NormFloat64()
				}
				exs[i] = ex
			default:
				return nil, fmt.Errorf("dwload drives glm and gibbs models; %s is %q", info.ID, info.Workload)
			}
		}
		buf, err := json.Marshal(predictRequest{Model: info.ID, Examples: exs})
		if err != nil {
			return nil, err
		}
		pool[p] = buf
	}
	return pool, nil
}

// drive paces predict traffic and collects client-side latencies.
func drive(client *http.Client, addr string, info modelInfo, pool [][]byte,
	rps float64, duration time.Duration, concurrency int) report {
	tokens := make(chan int, concurrency)
	var issued, ok, rejected, errs, unsent, preds atomic.Int64
	durCh := make(chan []time.Duration, concurrency)

	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			durs := make([]time.Duration, 0, 1024)
			for tok := range tokens {
				body := pool[tok%len(pool)]
				issued.Add(1)
				start := time.Now()
				resp, err := client.Post(addr+"/v1/predict", "application/json", bytes.NewReader(body))
				elapsed := time.Since(start)
				if err != nil {
					errs.Add(1)
					continue
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				durs = append(durs, elapsed)
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
					var pr struct {
						Count int64 `json:"count"`
					}
					if json.Unmarshal(raw, &pr) == nil {
						preds.Add(pr.Count)
					}
				case http.StatusTooManyRequests:
					rejected.Add(1)
				default:
					errs.Add(1)
				}
			}
			durCh <- durs
		}()
	}

	// Pacer: tokens owed are computed from the elapsed wall clock, not
	// a ticker — tickers coalesce missed ticks, which at high -rps
	// would silently issue fewer requests than the target instead of
	// counting the shortfall. A token nobody takes means the client
	// side is saturated; it is counted as unsent, never re-owed.
	interval := time.Duration(float64(time.Second) / rps)
	if interval < 50*time.Microsecond {
		interval = 50 * time.Microsecond
	}
	if interval > 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	started := time.Now()
	deadline := started.Add(duration)
	paced := int64(0) // tokens accounted for: handed off or unsent
	for {
		now := time.Now()
		if !now.Before(deadline) {
			break
		}
		owed := int64(now.Sub(started).Seconds()*rps) - paced
		for ; owed > 0; owed-- {
			select {
			case tokens <- int(paced):
			default:
				unsent.Add(1)
			}
			paced++
		}
		time.Sleep(interval)
	}
	close(tokens)
	wg.Wait()
	elapsed := time.Since(started)
	close(durCh)

	var all []time.Duration
	for d := range durCh {
		all = append(all, d...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	rep := report{
		Addr:        addr,
		Model:       info.ID,
		Workload:    info.Workload,
		TargetRPS:   rps,
		Seconds:     elapsed.Seconds(),
		Concurrency: concurrency,
		Issued:      issued.Load(),
		OK:          ok.Load(),
		Rejected:    rejected.Load(),
		Errors:      errs.Load(),
		Unsent:      unsent.Load(),
	}
	rep.AchievedRPS = float64(rep.OK) / elapsed.Seconds()
	rep.PredictionsSec = float64(preds.Load()) / elapsed.Seconds()
	if len(all) > 0 {
		var sum time.Duration
		for _, d := range all {
			sum += d
		}
		rep.MeanMs = sum.Seconds() * 1e3 / float64(len(all))
		rep.P50Ms = quantileMs(all, 0.50)
		rep.P95Ms = quantileMs(all, 0.95)
		rep.P99Ms = quantileMs(all, 0.99)
		rep.MaxMs = all[len(all)-1].Seconds() * 1e3
	}
	return rep
}

// quantileMs reads the q-th quantile of sorted durations.
func quantileMs(sorted []time.Duration, q float64) float64 {
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i].Seconds() * 1e3
}

func printReport(r report) {
	fmt.Printf("requests:    %d issued, %d ok, %d rejected (429), %d errors, %d unsent (client saturated)\n",
		r.Issued, r.OK, r.Rejected, r.Errors, r.Unsent)
	fmt.Printf("throughput:  %.1f req/s, %.1f predictions/s over %.2fs\n", r.AchievedRPS, r.PredictionsSec, r.Seconds)
	fmt.Printf("latency:     p50 %.2fms  p95 %.2fms  p99 %.2fms  max %.2fms  mean %.2fms\n",
		r.P50Ms, r.P95Ms, r.P99Ms, r.MaxMs, r.MeanMs)
	if r.Server != nil {
		fmt.Printf("server:      POST /v1/predict p50 %.2fms  p95 %.2fms  p99 %.2fms (%d requests)\n",
			r.Server.P50Ms, r.Server.P95Ms, r.Server.P99Ms, r.Server.Count)
	}
}

// getJSON fetches a URL into out.
func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, raw)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
