// Command dwgibbs runs Gibbs sampling over a factor graph supplied in
// the text format of internal/factor (vars/factor directives), through
// the workload engine: chains map onto the chosen model replication
// (permachine — one Hogwild! chain; pernode — DimmWitted's chain per
// socket; percore — a chain per worker) and run on either the
// simulated-NUMA executor or real concurrent goroutine samplers.
//
//	dwgibbs -graph model.fg -sweeps 2000 -burnin 200 -modelrep pernode
//	dwgibbs -demo -executor parallel      # Hogwild!-Gibbs on real goroutines
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"dimmwitted/internal/core"
	"dimmwitted/internal/factor"
	"dimmwitted/internal/numa"
)

func main() {
	graphPath := flag.String("graph", "", "factor graph file (text format)")
	demo := flag.Bool("demo", false, "use the built-in Paleo-scale graph")
	sweeps := flag.Int("sweeps", 1000, "sampling sweeps after burn-in")
	burnin := flag.Int("burnin", 100, "burn-in sweeps to discard")
	modelRep := flag.String("modelrep", "pernode", "chain placement: permachine, pernode, percore")
	executor := flag.String("executor", "simulated", "execution backend: simulated, parallel")
	machine := flag.String("machine", "local2", "simulated machine")
	seed := flag.Int64("seed", 1, "random seed")
	top := flag.Int("top", 20, "print only the top-N most polarised variables (0 = all)")
	flag.Parse()

	die := func(err error) {
		fmt.Fprintf(os.Stderr, "dwgibbs: %v\n", err)
		os.Exit(1)
	}

	var g *factor.Graph
	switch {
	case *demo:
		g = factor.Paleo()
	case *graphPath != "":
		f, err := os.Open(*graphPath)
		if err != nil {
			die(err)
		}
		g, err = factor.ReadGraph(f)
		f.Close()
		if err != nil {
			die(err)
		}
	default:
		die(fmt.Errorf("need -graph FILE or -demo"))
	}

	topo, err := numa.ByName(*machine)
	if err != nil {
		die(err)
	}
	exec, err := core.ExecutorByName(*executor)
	if err != nil {
		die(err)
	}
	plan := core.Plan{Machine: topo, Executor: exec, Seed: *seed}
	switch strings.ToLower(*modelRep) {
	case "permachine", "single":
		plan.ModelRep, plan.DataRep = core.PerMachine, core.Sharding
	case "pernode":
		plan.ModelRep, plan.DataRep = core.PerNode, core.FullReplication
	case "percore":
		plan.ModelRep, plan.DataRep = core.PerCore, core.FullReplication
	default:
		die(fmt.Errorf("unknown model replication %q (permachine, pernode, percore)", *modelRep))
	}

	wl := factor.NewWorkload(g)
	eng, err := core.NewWorkload(wl, plan)
	if err != nil {
		die(err)
	}

	fmt.Printf("graph: %d variables, %d factors, %d incidences\n", g.NumVars, len(g.Factors), g.NNZ())
	fmt.Printf("plan: %s (%d chains)\n\n", eng.Plan(), eng.Replicas())

	if *burnin > 0 {
		eng.RunEpochs(*burnin)
		wl.DiscardBurnIn()
	}
	// Throughput covers the measurement sweeps only — the cumulative
	// engine clocks would fold the burn-in in.
	samples := 0
	var simT, wallT time.Duration
	for _, er := range eng.RunEpochs(*sweeps) {
		samples += er.Steps
		simT += er.SimTime
		wallT += er.WallTime
	}
	if exec == core.ExecParallel {
		fmt.Printf("%d sweeps/chain, %d samples, %v wall clock, %.3gM samples/s\n\n",
			*sweeps, samples, wallT, float64(samples)/wallT.Seconds()/1e6)
	} else {
		fmt.Printf("%d sweeps/chain, %d samples, %v simulated, %.3gM samples/s\n\n",
			*sweeps, samples, simT, float64(samples)/simT.Seconds()/1e6)
	}

	marg := eng.Model()
	type vm struct {
		v int
		p float64
	}
	out := make([]vm, 0, len(marg))
	for v, p := range marg {
		out = append(out, vm{v, p})
	}
	if *top > 0 && len(out) > *top {
		// Most polarised first: |p - 0.5| descending.
		sort.Slice(out, func(i, j int) bool {
			di := out[i].p - 0.5
			dj := out[j].p - 0.5
			if di < 0 {
				di = -di
			}
			if dj < 0 {
				dj = -dj
			}
			return di > dj
		})
		out = out[:*top]
		sort.Slice(out, func(i, j int) bool { return out[i].v < out[j].v })
		fmt.Printf("top %d most polarised variables:\n", *top)
	}
	fmt.Println("variable  P(x=1)")
	for _, e := range out {
		fmt.Printf("%-9d %.4f\n", e.v, e.p)
	}
}
