// Command dwgibbs runs Gibbs sampling over a factor graph supplied in
// the text format of internal/factor (vars/factor directives), using
// either the single Hogwild!-style chain or DimmWitted's chain-per-
// node strategy, and prints the estimated marginals.
//
//	dwgibbs -graph model.fg -sweeps 2000 -burnin 200 -strategy pernode
//	dwgibbs -demo            # run the built-in Paleo-scale demo graph
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"dimmwitted/internal/factor"
	"dimmwitted/internal/numa"
)

func main() {
	graphPath := flag.String("graph", "", "factor graph file (text format)")
	demo := flag.Bool("demo", false, "use the built-in Paleo-scale graph")
	sweeps := flag.Int("sweeps", 1000, "sampling sweeps after burn-in")
	burnin := flag.Int("burnin", 100, "burn-in sweeps to discard")
	strategy := flag.String("strategy", "pernode", "chain strategy: pernode or single")
	machine := flag.String("machine", "local2", "simulated machine")
	seed := flag.Int64("seed", 1, "random seed")
	top := flag.Int("top", 20, "print only the top-N most polarised variables (0 = all)")
	flag.Parse()

	die := func(err error) {
		fmt.Fprintf(os.Stderr, "dwgibbs: %v\n", err)
		os.Exit(1)
	}

	var g *factor.Graph
	switch {
	case *demo:
		g = factor.Paleo()
	case *graphPath != "":
		f, err := os.Open(*graphPath)
		if err != nil {
			die(err)
		}
		g, err = factor.ReadGraph(f)
		f.Close()
		if err != nil {
			die(err)
		}
	default:
		die(fmt.Errorf("need -graph FILE or -demo"))
	}

	topo, err := numa.ByName(*machine)
	if err != nil {
		die(err)
	}
	var strat factor.ChainStrategy
	switch *strategy {
	case "pernode":
		strat = factor.ChainPerNode
	case "single":
		strat = factor.SingleChain
	default:
		die(fmt.Errorf("unknown strategy %q (pernode, single)", *strategy))
	}

	fmt.Printf("graph: %d variables, %d factors, %d incidences\n", g.NumVars, len(g.Factors), g.NNZ())
	fmt.Printf("strategy: %s on %s\n\n", strat, topo)

	s := factor.NewSampler(g, topo, strat, *seed)
	if *burnin > 0 {
		s.RunSweeps(*burnin)
		s.DiscardBurnIn()
	}
	res := s.RunSweeps(*sweeps)
	fmt.Printf("%d sweeps, %d samples, %v simulated, %.3gM samples/s\n\n",
		res.Sweeps, res.Samples, res.SimTime, res.Throughput/1e6)

	marg := s.Marginals()
	type vm struct {
		v int
		p float64
	}
	out := make([]vm, 0, len(marg))
	for v, p := range marg {
		out = append(out, vm{v, p})
	}
	if *top > 0 && len(out) > *top {
		// Most polarised first: |p - 0.5| descending.
		sort.Slice(out, func(i, j int) bool {
			di := out[i].p - 0.5
			dj := out[j].p - 0.5
			if di < 0 {
				di = -di
			}
			if dj < 0 {
				dj = -dj
			}
			return di > dj
		})
		out = out[:*top]
		sort.Slice(out, func(i, j int) bool { return out[i].v < out[j].v })
		fmt.Printf("top %d most polarised variables:\n", *top)
	}
	fmt.Println("variable  P(x=1)")
	for _, e := range out {
		fmt.Printf("%-9d %.4f\n", e.v, e.p)
	}
}
