// Command dwcoord runs the DimmWitted cluster coordinator: PerCluster
// model replication across a pool of dwserve peers. It shards a named
// dataset over the peers row-by-row, drives epoch-synchronous training
// rounds (each peer trains its shard under a forced FixedOrder plan,
// ships its model replica back as a CRC-checked snapshot, and the
// coordinator combines them with the workload's own sync semantics —
// PerNode model averaging, one level up), and serves the finished
// models through a consistent-hash ring over the peers.
//
//	dwcoord -peers localhost:8081,localhost:8082,localhost:8083
//	dwcoord -addr :8090 -cluster prod -epochs-per-round 2
//
// Peers can also join later — either dial the coordinator themselves
// (dwserve -peer-of http://coord:8090) or be registered by hand:
//
//	curl -s localhost:8090/v1/cluster/join -d '{"addr":"host4:8081"}'
//	curl -s localhost:8090/v1/cluster/peers
//
// Training and serving mirror the dwserve API, at cluster scope:
//
//	curl -s localhost:8090/v1/train -d '{"model":"svm","dataset":"reuters","max_epochs":10,"fixed_order":true}'
//	curl -s localhost:8090/v1/jobs/cl-1
//	curl -s localhost:8090/v1/predict -d '{"model":"cl-1","examples":[{"indices":[3,17],"values":[1,0.5]}]}'
//	curl -s localhost:8090/metrics
//
// A peer that dies mid-run is failed over automatically: its shard is
// re-pushed to a surviving peer and training resumes there from the
// last combined checkpoint, while serving falls through to the dead
// peer's ring successors.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dimmwitted/internal/cluster"
	"dimmwitted/internal/data"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	peers := flag.String("peers", "", "comma-separated dwserve peer addresses to join at startup")
	name := flag.String("cluster", "dw", "cluster name reported to peers")
	advertise := flag.String("advertise", "", "coordinator URL peers should report (default: -addr)")
	epochsPerRound := flag.Int("epochs-per-round", 1, "local epochs each peer trains between combines")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per peer on the serving ring (0 = 64)")
	replicate := flag.Int("replicate", 2, "ring nodes that receive each finished model")
	maxBody := flag.Int64("max-body-bytes", 0, "request body cap in bytes; oversized requests answer 413 (0 = 16 MiB, negative = unlimited)")
	peerTimeout := flag.Duration("peer-timeout", 30*time.Second, "per-request timeout against peers")
	roundTimeout := flag.Duration("round-timeout", 2*time.Minute, "timeout for one peer's training round")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second, "how long SIGTERM waits for in-flight requests before forcing the close")
	flag.Parse()

	adv := *advertise
	if adv == "" {
		adv = *addr
	}
	coord := cluster.NewCoordinator(cluster.Options{
		Name:            *name,
		Advertise:       adv,
		EpochsPerRound:  *epochsPerRound,
		RingVNodes:      *vnodes,
		ReplicateModels: *replicate,
		PeerTimeout:     *peerTimeout,
		RoundTimeout:    *roundTimeout,
		Logf:            log.Printf,
	})
	joined := 0
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			p = strings.TrimSpace(p)
			if p == "" {
				continue
			}
			if _, err := coord.Join(p); err != nil {
				log.Printf("dwcoord: peer %s did not join: %v", p, err)
				continue
			}
			joined++
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           cluster.NewHandler(coord, *maxBody),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	log.Printf("dwcoord: cluster %q listening on %s, %d peers joined, datasets %v",
		*name, *addr, joined, data.Names())
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("dwcoord: signal received, draining for up to %v", *shutdownGrace)
		sctx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		if err := httpSrv.Shutdown(sctx); err != nil {
			_ = httpSrv.Close()
		}
		cancel()
		log.Printf("dwcoord: shutdown complete")
	}
}
