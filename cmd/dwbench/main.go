// Command dwbench regenerates the tables and figures of the paper's
// evaluation. With no arguments it runs everything in paper order;
// -fig selects one experiment; -quick shrinks sweeps for a fast pass.
//
//	dwbench             # all figures, full grids
//	dwbench -fig 8b     # just Figure 8(b)
//	dwbench -quick      # everything, reduced grids
//	dwbench -list       # available figure ids
//	dwbench -executors  # wall-clock simulated-vs-parallel comparison
//	dwbench -executors -out BENCH_parallel.json
//	dwbench -gibbs      # sampling-throughput simulated-vs-parallel comparison
//	dwbench -gibbs -out BENCH_gibbs.json
//	dwbench -executors -min-speedup 1.0   # exit 1 if parallel loses anywhere
//	dwbench -trace      # traced pairs: step vs flush vs barrier breakdown
//	dwbench -trace -quick -out BENCH_trace.json
//	dwbench -feedback   # static first run vs feedback-corrected second run
//	dwbench -feedback -min-speedup 1.0 -out BENCH_optimizer.json
//	dwbench -stream     # chunked append throughput + online publish latency
//	dwbench -stream -quick -out BENCH_stream.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dimmwitted/internal/experiments"
)

func main() {
	fig := flag.String("fig", "", "figure id to run (e.g. 7a, 11, appA); empty = all")
	quick := flag.Bool("quick", false, "reduced sweeps for a fast pass")
	list := flag.Bool("list", false, "list available figure ids")
	executors := flag.Bool("executors", false, "compare wall-clock epoch times of the simulated and parallel executors")
	gibbs := flag.Bool("gibbs", false, "compare Gibbs sampling throughput of the simulated and parallel executors")
	traceRuns := flag.Bool("trace", false, "run traced sim-vs-parallel pairs and print the step-vs-flush-vs-barrier phase breakdown")
	feedback := flag.Bool("feedback", false, "run the self-tuning optimizer benchmark: static first run vs feedback-corrected second run")
	stream := flag.Bool("stream", false, "run the streaming-ingestion benchmark: chunked append throughput and online publication latency")
	minSpeedup := flag.Float64("min-speedup", 0, "with -executors, -gibbs or -feedback, exit non-zero if any speedup falls below this ratio (0 = report only)")
	out := flag.String("out", "", "with -executors, -gibbs, -trace, -feedback or -stream, also write the measurements as JSON to this file")
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Println(e.Name)
		}
		return
	}

	if *executors {
		entries := experiments.ExecWallEntries(*quick)
		experiments.ExecWallResult(entries).Table.Fprint(os.Stdout)
		writeJSON(*out, entries)
		gate(experiments.ExecSpeedups(entries), *minSpeedup)
		return
	}

	if *gibbs {
		entries := experiments.GibbsWallEntries(*quick)
		experiments.GibbsWallResult(entries).Table.Fprint(os.Stdout)
		writeJSON(*out, entries)
		gate(experiments.GibbsSpeedups(entries), *minSpeedup)
		return
	}

	if *feedback {
		entries := experiments.FeedbackEntries(*quick)
		experiments.FeedbackResult(entries).Table.Fprint(os.Stdout)
		writeJSON(*out, entries)
		gate(experiments.FeedbackSpeedups(entries), *minSpeedup)
		return
	}

	if *stream {
		entries := experiments.StreamEntries(*quick)
		experiments.StreamResult(entries).Table.Fprint(os.Stdout)
		writeJSON(*out, entries)
		for _, e := range entries {
			if e.Error != "" {
				fmt.Fprintf(os.Stderr, "dwbench: stream %s: %s\n", e.Task, e.Error)
				os.Exit(1)
			}
		}
		return
	}

	if *traceRuns {
		entries := experiments.TraceEntries(*quick)
		experiments.TraceResult(entries).Table.Fprint(os.Stdout)
		writeJSON(*out, entries)
		return
	}

	if *fig != "" {
		name := *fig
		if _, ok := experiments.Lookup(name); !ok {
			name = "fig" + name
		}
		drv, ok := experiments.Lookup(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "dwbench: unknown figure %q (try -list)\n", *fig)
			os.Exit(1)
		}
		drv(*quick).Table.Fprint(os.Stdout)
		return
	}

	for _, e := range experiments.Registry() {
		e.Driver(*quick).Table.Fprint(os.Stdout)
	}
}

// gate prints the parallel-vs-simulated speedup per task and, when a
// positive -min-speedup threshold is set, exits non-zero if any task
// falls below it — the CI regression gate for "the parallel executor
// must win".
func gate(rows []experiments.SpeedupRow, min float64) {
	fail := false
	for _, r := range rows {
		status := ""
		if min > 0 && r.Speedup < min {
			status = "  BELOW THRESHOLD"
			fail = true
		}
		fmt.Printf("speedup %-24s %7.2fx  (simulated %.4g, parallel %.4g %s)%s\n",
			r.Task, r.Speedup, r.Simulated, r.Parallel, r.Metric, status)
	}
	if fail {
		fmt.Fprintf(os.Stderr, "dwbench: parallel executor below the %.2fx speedup threshold\n", min)
		os.Exit(1)
	}
}

// writeJSON persists measurement entries when -out is set.
func writeJSON(path string, entries any) {
	if path == "" {
		return
	}
	buf, err := json.MarshalIndent(entries, "", "  ")
	if err == nil {
		err = os.WriteFile(path, buf, 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dwbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
}
