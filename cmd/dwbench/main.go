// Command dwbench regenerates the tables and figures of the paper's
// evaluation. With no arguments it runs everything in paper order;
// -fig selects one experiment; -quick shrinks sweeps for a fast pass.
//
//	dwbench             # all figures, full grids
//	dwbench -fig 8b     # just Figure 8(b)
//	dwbench -quick      # everything, reduced grids
//	dwbench -list       # available figure ids
//	dwbench -executors  # wall-clock simulated-vs-parallel comparison
//	dwbench -executors -out BENCH_parallel.json
//	dwbench -trace      # traced pairs: step vs flush vs barrier breakdown
//	dwbench -trace -quick -out BENCH_trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dimmwitted/internal/experiments"
)

func main() {
	fig := flag.String("fig", "", "figure id to run (e.g. 7a, 11, appA); empty = all")
	quick := flag.Bool("quick", false, "reduced sweeps for a fast pass")
	list := flag.Bool("list", false, "list available figure ids")
	executors := flag.Bool("executors", false, "compare wall-clock epoch times of the simulated and parallel executors")
	traceRuns := flag.Bool("trace", false, "run traced sim-vs-parallel pairs and print the step-vs-flush-vs-barrier phase breakdown")
	out := flag.String("out", "", "with -executors or -trace, also write the measurements as JSON to this file")
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Println(e.Name)
		}
		return
	}

	if *executors {
		entries := experiments.ExecWallEntries(*quick)
		experiments.ExecWallResult(entries).Table.Fprint(os.Stdout)
		writeJSON(*out, entries)
		return
	}

	if *traceRuns {
		entries := experiments.TraceEntries(*quick)
		experiments.TraceResult(entries).Table.Fprint(os.Stdout)
		writeJSON(*out, entries)
		return
	}

	if *fig != "" {
		name := *fig
		if _, ok := experiments.Lookup(name); !ok {
			name = "fig" + name
		}
		drv, ok := experiments.Lookup(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "dwbench: unknown figure %q (try -list)\n", *fig)
			os.Exit(1)
		}
		drv(*quick).Table.Fprint(os.Stdout)
		return
	}

	for _, e := range experiments.Registry() {
		e.Driver(*quick).Table.Fprint(os.Stdout)
	}
}

// writeJSON persists measurement entries when -out is set.
func writeJSON(path string, entries any) {
	if path == "" {
		return
	}
	buf, err := json.MarshalIndent(entries, "", "  ")
	if err == nil {
		err = os.WriteFile(path, buf, 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dwbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
}
