package dimmwitted

import "testing"

// TestQuickstart exercises the documented happy path of the public API.
func TestQuickstart(t *testing.T) {
	ds := Reuters()
	spec := SVM()
	plan, err := Choose(spec, ds, Local2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Access != RowWise || plan.ModelRep != PerNode {
		t.Errorf("unexpected plan %v", plan)
	}
	eng, err := New(spec, ds, plan)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.RunToLoss(0.2, 40)
	if !res.Converged {
		t.Fatalf("quickstart did not converge: %v", res.FinalLoss)
	}
	if len(eng.Model()) != ds.Cols() {
		t.Errorf("model dim %d, want %d", len(eng.Model()), ds.Cols())
	}
}

func TestFacadeConstructors(t *testing.T) {
	for _, spec := range []Spec{SVM(), LR(), LS(), LP(), QP(), ParallelSum()} {
		if spec.Name() == "" {
			t.Error("unnamed spec")
		}
	}
	for _, ds := range []*Dataset{RCV1(), Reuters(), Music(), MusicRegression(), Forest(),
		AmazonLP(), GoogleLP(), AmazonQP(), GoogleQP(), ClueWeb(0.02)} {
		if err := ds.Validate(); err != nil {
			t.Errorf("%s: %v", ds.Name, err)
		}
	}
	if _, err := ModelByName("svm"); err != nil {
		t.Error(err)
	}
	if _, err := MachineByName("local8"); err != nil {
		t.Error(err)
	}
	if sub := SubsampleSparsity(Music(), 0.1, 1); sub.NNZ() >= Music().NNZ() {
		t.Error("subsample did not thin")
	}
	if sub := SubsampleRows(Reuters(), 0.5, 1); sub.Rows() != Reuters().Rows()/2 {
		t.Error("row subsample wrong")
	}
}

func TestFacadeExplainAndParallelExecutor(t *testing.T) {
	ests := Explain(SVM(), Reuters(), Local2)
	if len(ests) != 2 {
		t.Fatalf("Explain returned %d estimates", len(ests))
	}
	if _, err := ExecutorByName("bogus"); err == nil {
		t.Error("bogus executor name accepted")
	}
	plan, err := ChooseExecutor(SVM(), Reuters(), Local2, ExecParallel)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Access != RowWise || plan.Executor != ExecParallel {
		t.Errorf("parallel plan chose %v/%v", plan.Access, plan.Executor)
	}
	plan.Workers = 4
	eng, err := New(SVM(), Reuters(), plan)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		eng.RunEpoch()
	}
	if x := eng.Model(); len(x) != Reuters().Cols() {
		t.Errorf("parallel model dim %d", len(x))
	}
	if eng.WallTime() <= 0 {
		t.Error("parallel engine reported no wall time")
	}
}
