module dimmwitted

go 1.22
